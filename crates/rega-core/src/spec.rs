//! A textual specification format for (extended) register automata.
//!
//! Workflow specifications are configuration, not code; this module lets
//! them be written as plain text:
//!
//! ```text
//! registers 2
//! schema { U/1, E/2 }
//!
//! state q1 init accept
//! state q2
//!
//! trans q1 -> q2 : x1 = x2, x2 = y2
//! trans q2 -> q2 : x2 = y2, U(x1)
//! trans q2 -> q1 : x2 = y2, y1 = y2, !E(x1, y1)
//!
//! constraint eq 1 1 : q1 q2* q1
//! constraint neq 1 1 : q2 q2 q2*
//! ```
//!
//! * `registers k` — number of registers (required, first meaningful line).
//! * `schema { R/arity, … }` — optional relational signature; `const name`
//!   entries declare constants.
//! * `state name [init] [accept]` — declares a state.
//! * `trans a -> b : literal, …` — a transition; literals are `s = t`,
//!   `s != t`, `R(t, …)`, `!R(t, …)` over terms `x1…xk`, `y1…yk`, and
//!   declared constant names.
//! * `constraint eq|neq i j : regex` — a global constraint with a regular
//!   expression over state names (Section 3 of the paper).
//!
//! `#`-comments and blank lines are ignored. The format round-trips via
//! [`to_spec`].

use crate::automaton::RegisterAutomaton;
use crate::error::CoreError;
use crate::extended::{ConstraintKind, ExtendedAutomaton};
use rega_data::{Literal, RegIdx, Schema, SigmaType, Term};
use std::fmt::Write as _;

/// Errors from [`parse_spec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

/// Parses a term: `x3`, `y1`, or a declared constant name.
fn parse_term(tok: &str, k: u16, schema: &Schema, line: usize) -> Result<Term, SpecError> {
    let reg = |s: &str| -> Option<u16> { s.parse::<u16>().ok().filter(|&i| i >= 1) };
    if let Some(rest) = tok.strip_prefix('x') {
        if let Some(i) = reg(rest) {
            if i > k {
                return Err(err(line, format!("register x{i} out of range (k = {k})")));
            }
            return Ok(Term::x(i - 1));
        }
    }
    if let Some(rest) = tok.strip_prefix('y') {
        if let Some(i) = reg(rest) {
            if i > k {
                return Err(err(line, format!("register y{i} out of range (k = {k})")));
            }
            return Ok(Term::y(i - 1));
        }
    }
    match schema.constant(tok) {
        Ok(c) => Ok(Term::Const(c)),
        Err(_) => Err(err(line, format!("unknown term `{tok}`"))),
    }
}

/// Parses one literal: `s = t`, `s != t`, `R(a, b)`, `!R(a, b)`.
fn parse_literal(text: &str, k: u16, schema: &Schema, line: usize) -> Result<Literal, SpecError> {
    let text = text.trim();
    if let Some((lhs, rhs)) = text.split_once("!=") {
        let s = parse_term(lhs.trim(), k, schema, line)?;
        let t = parse_term(rhs.trim(), k, schema, line)?;
        return Ok(Literal::neq(s, t));
    }
    if let Some((lhs, rhs)) = text.split_once('=') {
        let s = parse_term(lhs.trim(), k, schema, line)?;
        let t = parse_term(rhs.trim(), k, schema, line)?;
        return Ok(Literal::eq(s, t));
    }
    // Relational atom, possibly negated.
    let (positive, body) = match text.strip_prefix('!') {
        Some(rest) => (false, rest.trim()),
        None => (true, text),
    };
    let open = body
        .find('(')
        .ok_or_else(|| err(line, format!("cannot parse literal `{text}`")))?;
    if !body.ends_with(')') {
        return Err(err(line, format!("missing `)` in `{text}`")));
    }
    let name = body[..open].trim();
    let rel = schema
        .relation(name)
        .map_err(|_| err(line, format!("unknown relation `{name}`")))?;
    let args_text = &body[open + 1..body.len() - 1];
    let args: Result<Vec<Term>, SpecError> = args_text
        .split(',')
        .filter(|a| !a.trim().is_empty())
        .map(|a| parse_term(a.trim(), k, schema, line))
        .collect();
    let args = args?;
    if args.len() != schema.arity(rel) {
        return Err(err(
            line,
            format!(
                "relation `{name}` has arity {}, got {} arguments",
                schema.arity(rel),
                args.len()
            ),
        ));
    }
    Ok(if positive {
        Literal::rel(rel, args)
    } else {
        Literal::not_rel(rel, args)
    })
}

/// Parses a textual specification into an extended register automaton.
pub fn parse_spec(input: &str) -> Result<ExtendedAutomaton, SpecError> {
    let mut k: Option<u16> = None;
    let mut schema = Schema::empty();
    let mut ra: Option<RegisterAutomaton> = None;
    // Deferred constraint lines: (line_no, kind, i, j, regex text).
    let mut constraints: Vec<(usize, ConstraintKind, u16, u16, String)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let head = words.next().expect("non-empty line");
        match head {
            "registers" => {
                let n: u16 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(line_no, "expected `registers <k>`"))?;
                if k.is_some() {
                    return Err(err(line_no, "duplicate `registers` line"));
                }
                k = Some(n);
            }
            "schema" => {
                if ra.is_some() {
                    return Err(err(line_no, "`schema` must precede states"));
                }
                let inner = line
                    .trim_start_matches("schema")
                    .trim()
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or_else(|| err(line_no, "expected `schema { … }`"))?;
                for entry in inner.split(',').map(str::trim).filter(|e| !e.is_empty()) {
                    if let Some(name) = entry.strip_prefix("const ") {
                        let name = name.trim();
                        // Register-shaped names would shadow x1/y1 term
                        // parsing and silently change meaning.
                        let register_shaped = |n: &str| {
                            n.strip_prefix('x')
                                .or_else(|| n.strip_prefix('y'))
                                .is_some_and(|rest| rest.parse::<u16>().is_ok())
                        };
                        if register_shaped(name) {
                            return Err(err(
                                line_no,
                                format!("constant `{name}` would shadow a register term"),
                            ));
                        }
                        schema
                            .add_constant(name)
                            .map_err(|e| err(line_no, e.to_string()))?;
                    } else if let Some((name, arity)) = entry.split_once('/') {
                        let arity: usize = arity
                            .trim()
                            .parse()
                            .map_err(|_| err(line_no, format!("bad arity in `{entry}`")))?;
                        schema
                            .add_relation(name.trim(), arity)
                            .map_err(|e| err(line_no, e.to_string()))?;
                    } else {
                        return Err(err(line_no, format!("bad schema entry `{entry}`")));
                    }
                }
            }
            "state" => {
                let k = k.ok_or_else(|| err(line_no, "`registers` must come first"))?;
                let automaton = ra.get_or_insert_with(|| RegisterAutomaton::new(k, schema.clone()));
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "expected `state <name> [init] [accept]`"))?;
                if automaton.state_by_name(name).is_some() {
                    return Err(err(line_no, format!("duplicate state `{name}`")));
                }
                let id = automaton.add_state(name);
                for flag in words {
                    match flag {
                        "init" => automaton.set_initial(id),
                        "accept" => automaton.set_accepting(id),
                        other => return Err(err(line_no, format!("unknown state flag `{other}`"))),
                    }
                }
            }
            "trans" => {
                let k = k.ok_or_else(|| err(line_no, "`registers` must come first"))?;
                let automaton = ra
                    .as_mut()
                    .ok_or_else(|| err(line_no, "declare states before transitions"))?;
                let rest = line.trim_start_matches("trans").trim();
                let (head_part, body) = match rest.split_once(':') {
                    Some((h, b)) => (h.trim(), b.trim()),
                    None => (rest, ""),
                };
                let (from_name, to_name) = head_part
                    .split_once("->")
                    .ok_or_else(|| err(line_no, "expected `trans a -> b : …`"))?;
                let from = automaton
                    .state_by_name(from_name.trim())
                    .ok_or_else(|| err(line_no, format!("unknown state `{}`", from_name.trim())))?;
                let to = automaton
                    .state_by_name(to_name.trim())
                    .ok_or_else(|| err(line_no, format!("unknown state `{}`", to_name.trim())))?;
                let mut literals = Vec::new();
                for lit_text in split_literals(body) {
                    literals.push(parse_literal(&lit_text, k, &schema, line_no)?);
                }
                let ty = SigmaType::new(k, literals);
                automaton
                    .add_transition(from, ty, to)
                    .map_err(|e| err(line_no, e.to_string()))?;
            }
            "constraint" => {
                let kind = match words.next() {
                    Some("eq") => ConstraintKind::Equal,
                    Some("neq") => ConstraintKind::NotEqual,
                    other => {
                        return Err(err(
                            line_no,
                            format!("expected `eq` or `neq`, got {other:?}"),
                        ))
                    }
                };
                let parse_reg = |w: Option<&str>| -> Result<u16, SpecError> {
                    w.and_then(|w| w.parse::<u16>().ok())
                        .filter(|&i| i >= 1)
                        .map(|i| i - 1)
                        .ok_or_else(|| err(line_no, "expected register indices `i j`"))
                };
                let i = parse_reg(words.next())?;
                let j = parse_reg(words.next())?;
                let regex_text = line
                    .split_once(':')
                    .map(|(_, r)| r.trim().to_string())
                    .ok_or_else(|| err(line_no, "expected `constraint kind i j : regex`"))?;
                constraints.push((line_no, kind, i, j, regex_text));
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    let ra = ra.ok_or_else(|| err(input.lines().count().max(1), "no states declared"))?;
    let mut ext = ExtendedAutomaton::new(ra);
    for (line_no, kind, i, j, regex_text) in constraints {
        ext.add_constraint_str(kind, RegIdx(i), RegIdx(j), &regex_text)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    Ok(ext)
}

/// Splits a transition body at top-level commas (commas inside relation
/// argument lists do not split).
fn split_literals(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Renders an extended automaton back into the specification format.
/// Constraints given directly as DFAs (e.g. by the projection
/// constructions) have no regular-expression form and are rendered as a
/// comment.
pub fn to_spec(ext: &ExtendedAutomaton) -> Result<String, CoreError> {
    let ra = ext.ra();
    let schema = ra.schema();
    let mut out = String::new();
    let _ = writeln!(out, "registers {}", ra.k());
    if !schema.is_empty() {
        let mut entries: Vec<String> = schema
            .relations()
            .map(|r| format!("{}/{}", schema.relation_name(r), schema.arity(r)))
            .collect();
        entries.extend(
            schema
                .constants()
                .map(|c| format!("const {}", schema.constant_name(c))),
        );
        let _ = writeln!(out, "schema {{ {} }}", entries.join(", "));
    }
    let _ = writeln!(out);
    for s in ra.states() {
        let mut line = format!("state {}", ra.state_name(s));
        if ra.is_initial(s) {
            line.push_str(" init");
        }
        if ra.is_accepting(s) {
            line.push_str(" accept");
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out);
    let term = |t: &Term| -> String {
        match t {
            Term::X(i) => format!("x{}", i.0 + 1),
            Term::Y(i) => format!("y{}", i.0 + 1),
            Term::Const(c) => schema.constant_name(*c).to_string(),
        }
    };
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        let lits: Vec<String> = tr
            .ty
            .literals()
            .map(|l| match l {
                Literal::Eq(s, t) => format!("{} = {}", term(s), term(t)),
                Literal::Neq(s, t) => format!("{} != {}", term(s), term(t)),
                Literal::Rel {
                    rel,
                    args,
                    positive,
                } => {
                    let args: Vec<String> = args.iter().map(&term).collect();
                    format!(
                        "{}{}({})",
                        if *positive { "" } else { "!" },
                        schema.relation_name(*rel),
                        args.join(", ")
                    )
                }
            })
            .collect();
        let body = if lits.is_empty() {
            String::new()
        } else {
            format!(" : {}", lits.join(", "))
        };
        let _ = writeln!(
            out,
            "trans {} -> {}{}",
            ra.state_name(tr.from),
            ra.state_name(tr.to),
            body
        );
    }
    if !ext.constraints().is_empty() {
        let _ = writeln!(out);
    }
    for c in ext.constraints() {
        let kind = match c.kind {
            ConstraintKind::Equal => "eq",
            ConstraintKind::NotEqual => "neq",
        };
        match &c.regex {
            Some(r) => {
                let rendered = r.render(&|s: &crate::StateId| ra.state_name(*s).to_string());
                let _ = writeln!(
                    out,
                    "constraint {kind} {} {} : {}",
                    c.i.0 + 1,
                    c.j.0 + 1,
                    rendered
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "# constraint {kind} {} {} given as a {}-state DFA (no regex form)",
                    c.i.0 + 1,
                    c.j.0 + 1,
                    c.dfa().num_states()
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    const EXAMPLE1_SPEC: &str = r"
        registers 2
        state q1 init accept
        state q2
        trans q1 -> q2 : x1 = x2, x2 = y2
        trans q2 -> q2 : x2 = y2
        trans q2 -> q1 : x2 = y2, y1 = y2
    ";

    #[test]
    fn parses_example1() {
        let ext = parse_spec(EXAMPLE1_SPEC).unwrap();
        let (reference, _) = paper::example1();
        assert_eq!(ext.ra().num_states(), reference.num_states());
        assert_eq!(ext.ra().num_transitions(), reference.num_transitions());
        for t in reference.transition_ids() {
            assert_eq!(ext.ra().transition(t).ty, reference.transition(t).ty);
        }
    }

    #[test]
    fn parses_constraints_and_schema() {
        let spec = r"
            registers 1
            schema { U/1, E/2, const root }
            state p init accept
            state q
            trans p -> q : U(x1), !E(x1, y1), x1 != root
            trans q -> p
            constraint eq 1 1 : p q* p
            constraint neq 1 1 : q q q*
        ";
        let ext = parse_spec(spec).unwrap();
        assert_eq!(ext.constraints().len(), 2);
        assert_eq!(ext.ra().schema().num_relations(), 2);
        assert_eq!(ext.ra().schema().num_constants(), 1);
        let t0 = &ext.ra().transition(crate::TransId(0)).ty;
        assert_eq!(t0.len(), 3);
    }

    #[test]
    fn round_trips_through_to_spec() {
        let ext = parse_spec(EXAMPLE1_SPEC).unwrap();
        let rendered = to_spec(&ext).unwrap();
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(reparsed.ra().num_states(), ext.ra().num_states());
        assert_eq!(reparsed.ra().num_transitions(), ext.ra().num_transitions());
        for t in ext.ra().transition_ids() {
            assert_eq!(reparsed.ra().transition(t).ty, ext.ra().transition(t).ty);
        }
    }

    #[test]
    fn round_trips_example5_constraint() {
        let ext = paper::example5();
        let rendered = to_spec(&ext).unwrap();
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(reparsed.constraints().len(), 1);
        // The constraint DFA must accept the same factors.
        let p1 = reparsed.ra().state_by_name("p1").unwrap();
        let p2 = reparsed.ra().state_by_name("p2").unwrap();
        let dfa = reparsed.constraints()[0].dfa();
        assert!(dfa.accepts(&[p1, p2, p2, p1]));
        assert!(!dfa.accepts(&[p2, p1]));
    }

    #[test]
    fn helpful_errors() {
        assert!(parse_spec("state p")
            .unwrap_err()
            .message
            .contains("registers"));
        let e = parse_spec("registers 1\nstate p init\ntrans p -> missing").unwrap_err();
        assert!(e.message.contains("unknown state"));
        assert_eq!(e.line, 3);
        let e = parse_spec("registers 1\nstate p init\ntrans p -> p : x9 = y1").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_spec("registers 1\nstate p\nstate p").unwrap_err();
        assert!(e.message.contains("duplicate state"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = "# header\nregisters 1\n\nstate p init accept # the only state\ntrans p -> p\n";
        let ext = parse_spec(spec).unwrap();
        assert_eq!(ext.ra().num_states(), 1);
    }

    #[test]
    fn unsatisfiable_type_rejected_with_line() {
        let e =
            parse_spec("registers 1\nstate p init\ntrans p -> p : x1 = y1, x1 != y1").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn register_shaped_constant_rejected() {
        let e =
            parse_spec("registers 1\nschema { const x1 }\nstate p init\ntrans p -> p").unwrap_err();
        assert!(e.message.contains("shadow"));
        assert_eq!(e.line, 2);
        // Non-register-shaped names are fine, including an `x` alone.
        assert!(parse_spec(
            "registers 1\nschema { const x }\nstate p init accept\ntrans p -> p : x1 = x"
        )
        .is_ok());
    }

    #[test]
    fn nullary_relation() {
        let spec = "registers 1\nschema { Flag/0 }\nstate p init accept\ntrans p -> p : Flag()";
        let ext = parse_spec(spec).unwrap();
        assert_eq!(ext.ra().num_transitions(), 1);
    }
}
