//! Enhanced register automata (Section 6): extended automata further
//! augmented with *finiteness constraints* and *tuple inequality
//! constraints*. Theorem 24 shows these suffice to describe projections of
//! register automata in which some registers **and the entire database** are
//! hidden.
//!
//! ## Representation of the MSO constraints
//!
//! The paper specifies both new constraint kinds by MSO formulas over the
//! state trace. Every formula it actually uses is regular, so we represent
//! them by automata (cf. Lemma 14), which keeps them executable:
//!
//! * a [`PositionSelector`] (for `φ_fin(x)`) is a finite union of pairs
//!   `(before, from_here)`: position `m` is selected iff for some pair the
//!   strict prefix `q_0 … q_{m-1}` is accepted by the DFA `before` and the
//!   suffix `q_m q_{m+1} …` is accepted by the Büchi automaton `from_here`.
//!   This normal form captures exactly the MSO-definable unary predicates
//!   on ω-words.
//! * a [`TupleInequality`] selector is a Büchi automaton over *marked*
//!   letters `(state, mark)`: the mark is a bitmask over the `2l` position
//!   slots (`α₁…α_l β₁…β_l`). A tuple of positions is selected iff the
//!   ω-word marked at those positions is accepted.
//!
//! ## Semantics
//!
//! * A finiteness constraint `(i, sel)` holds in a run iff the set of
//!   *values* `{ d_m[i] | m selected }` is finite. (The paper's prose reads
//!   "the set of positions is finite", but its own use in Theorem 24 —
//!   where the selected positions recur forever yet the values must form
//!   the finite set `C` — fixes the intended reading to values; see
//!   DESIGN.md.) On an ultimately periodic run the value set is always
//!   finite, so these constraints only restrict non-periodic runs.
//! * A tuple inequality `(ī, j̄, sel)` holds iff for every selected pair of
//!   position tuples `(ᾱ, β̄)`: `(d_{α₁}[i₁], …) ≠ (d_{β₁}[j₁], …)` as
//!   tuples.

use crate::automaton::StateId;
use crate::extended::ExtendedAutomaton;
use crate::run::LassoRun;
use rega_automata::{Dfa, Lasso, Nba};
use rega_data::{RegIdx, Value};
use std::collections::BTreeSet;

/// A regular unary position predicate on state traces (see module docs).
#[derive(Clone, Debug)]
pub struct PositionSelector {
    /// Union components `(before, from_here)`.
    pub components: Vec<(Dfa<StateId>, Nba<StateId>)>,
}

impl PositionSelector {
    /// A selector that selects every position.
    pub fn all(states: Vec<StateId>) -> Self {
        // before: accepts every finite word; from_here: accepts everything.
        let before = Dfa::from_parts(states.clone(), 0, vec![true], vec![vec![0; states.len()]]);
        let mut nba = Nba::new(states, 1);
        nba.set_init(0);
        nba.set_accepting(0, true);
        for li in 0..nba.alphabet().len() {
            let letter = nba.alphabet()[li];
            nba.add_transition(0, &letter, 0);
        }
        PositionSelector {
            components: vec![(before, nba)],
        }
    }

    /// Whether position `m` of the (ultimately periodic) state trace is
    /// selected.
    pub fn is_selected(&self, trace: &Lasso<StateId>, m: usize) -> bool {
        let prefix = trace.unroll(m);
        // The suffix from m is again a lasso.
        let suffix = shift_lasso(trace, m);
        self.components
            .iter()
            .any(|(before, from_here)| before.accepts(&prefix) && from_here.accepts_lasso(&suffix))
    }
}

/// The lasso denoting the suffix of `trace` starting at position `m`.
pub fn shift_lasso<L: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug>(
    trace: &Lasso<L>,
    m: usize,
) -> Lasso<L> {
    if m <= trace.prefix_len() {
        Lasso::new(trace.prefix[m..].to_vec(), trace.cycle.clone())
    } else {
        let off = (m - trace.prefix_len()) % trace.period();
        let mut cycle = trace.cycle[off..].to_vec();
        cycle.extend_from_slice(&trace.cycle[..off]);
        Lasso::new(Vec::new(), cycle)
    }
}

/// A finiteness constraint: the set of values of `register` at the selected
/// positions must be finite.
#[derive(Clone, Debug)]
pub struct FinitenessConstraint {
    /// The register whose values are collected.
    pub register: RegIdx,
    /// The position predicate.
    pub selector: PositionSelector,
}

/// A tuple inequality constraint (see module docs). `mark` bit `b` (for
/// `b < arity`) marks slot `α_{b+1}`; bit `arity + b` marks `β_{b+1}`.
#[derive(Clone, Debug)]
pub struct TupleInequality {
    /// Registers read at the `ᾱ` positions.
    pub i_regs: Vec<RegIdx>,
    /// Registers read at the `β̄` positions.
    pub j_regs: Vec<RegIdx>,
    /// Büchi automaton over `(state, mark)` letters selecting the tuples.
    pub selector: Nba<(StateId, u32)>,
}

impl TupleInequality {
    /// The common arity `l`.
    pub fn arity(&self) -> usize {
        self.i_regs.len()
    }

    /// Whether the position tuple `(alphas, betas)` is selected on `trace`.
    ///
    /// Builds the marked lasso: marks must all fall within
    /// `max(positions) + 1`; the word is unrolled far enough that all marks
    /// sit in the prefix of the marked lasso.
    pub fn is_selected(&self, trace: &Lasso<StateId>, alphas: &[usize], betas: &[usize]) -> bool {
        debug_assert_eq!(alphas.len(), self.arity());
        debug_assert_eq!(betas.len(), self.arity());
        let l = self.arity();
        let max_pos = alphas
            .iter()
            .chain(betas.iter())
            .copied()
            .max()
            .unwrap_or(0);
        // Unroll past all marks and past the lasso's own prefix so the
        // remaining cycle is mark-free.
        let cut = (max_pos + 1).max(trace.prefix_len() + trace.period());
        // Align the cut to a full period boundary beyond the prefix.
        let extra = (cut - trace.prefix_len()).div_ceil(trace.period());
        let cut = trace.prefix_len() + extra * trace.period();
        let mark_at = |m: usize| -> u32 {
            let mut mask = 0u32;
            for (b, &a) in alphas.iter().enumerate() {
                if a == m {
                    mask |= 1 << b;
                }
            }
            for (b, &bb) in betas.iter().enumerate() {
                if bb == m {
                    mask |= 1 << (l + b);
                }
            }
            mask
        };
        let prefix: Vec<(StateId, u32)> = (0..cut).map(|m| (*trace.at(m), mark_at(m))).collect();
        let cycle: Vec<(StateId, u32)> = (cut..cut + trace.period())
            .map(|m| (*trace.at(m), 0u32))
            .collect();
        self.selector.accepts_lasso(&Lasso::new(prefix, cycle))
    }

    /// The value tuple read at positions `ps` through registers `regs`.
    fn value_tuple(run: &LassoRun, ps: &[usize], regs: &[RegIdx]) -> Vec<Value> {
        ps.iter()
            .zip(regs.iter())
            .map(|(&p, r)| run.config_at(p).regs[r.idx()])
            .collect()
    }
}

/// An enhanced automaton: an extended automaton plus finiteness and tuple
/// inequality constraints. (Monadic global inequality constraints are a
/// special case of tuple inequalities of arity 1, as the paper notes, but
/// keeping them in the extended layer preserves the cheaper monitors.)
#[derive(Clone, Debug)]
pub struct EnhancedAutomaton {
    ext: ExtendedAutomaton,
    finiteness: Vec<FinitenessConstraint>,
    tuple_neq: Vec<TupleInequality>,
}

impl EnhancedAutomaton {
    /// Wraps an extended automaton with (initially) no additional
    /// constraints.
    pub fn new(ext: ExtendedAutomaton) -> Self {
        EnhancedAutomaton {
            ext,
            finiteness: Vec::new(),
            tuple_neq: Vec::new(),
        }
    }

    /// The underlying extended automaton.
    pub fn ext(&self) -> &ExtendedAutomaton {
        &self.ext
    }

    /// Adds a finiteness constraint.
    pub fn add_finiteness(&mut self, c: FinitenessConstraint) {
        self.finiteness.push(c);
    }

    /// Adds a tuple inequality constraint.
    pub fn add_tuple_inequality(&mut self, c: TupleInequality) {
        self.tuple_neq.push(c);
    }

    /// The finiteness constraints.
    pub fn finiteness_constraints(&self) -> &[FinitenessConstraint] {
        &self.finiteness
    }

    /// The tuple inequality constraints.
    pub fn tuple_inequalities(&self) -> &[TupleInequality] {
        &self.tuple_neq
    }

    /// Checks a lasso run against the underlying extended automaton and the
    /// enhanced constraints.
    ///
    /// * Finiteness constraints hold on every ultimately periodic run
    ///   (finitely many values occur at all), so they are reported satisfied.
    /// * Tuple inequalities are checked for all position tuples up to
    ///   `horizon` positions (defaults to the prefix plus three periods when
    ///   `None`). On an ultimately periodic run, value patterns and selector
    ///   acceptance are eventually periodic, so violations show up within a
    ///   small horizon; the experiments use explicitly larger horizons.
    pub fn check_lasso_run(
        &self,
        db: &rega_data::Database,
        run: &LassoRun,
        horizon: Option<usize>,
    ) -> Result<(), crate::error::CoreError> {
        self.ext.check_lasso_run(db, run)?;
        let trace = run.state_trace();
        let h = horizon.unwrap_or(run.loop_start + 3 * run.period());
        for (ci, c) in self.tuple_neq.iter().enumerate() {
            let l = c.arity();
            // Enumerate all (ᾱ, β̄) ∈ [0,h)^{2l}. A tuple can only violate
            // when the value tuples coincide, so the (cheap) value check
            // comes first and the (expensive) selector evaluation runs only
            // on the equal-value tuples.
            let total = h.pow(2 * l as u32);
            for flat in 0..total {
                let mut rest = flat;
                let mut ps = Vec::with_capacity(2 * l);
                for _ in 0..2 * l {
                    ps.push(rest % h);
                    rest /= h;
                }
                let (alphas, betas) = ps.split_at(l);
                let va = TupleInequality::value_tuple(run, alphas, &c.i_regs);
                let vb = TupleInequality::value_tuple(run, betas, &c.j_regs);
                if va == vb && c.is_selected(&trace, alphas, betas) {
                    return Err(crate::error::CoreError::InvalidRun(format!(
                        "tuple inequality {ci} violated at ᾱ={alphas:?}, β̄={betas:?}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The set of values subject to each finiteness constraint within the
    /// first `horizon` positions of a lasso run (diagnostic; always finite
    /// on lassos).
    pub fn finiteness_value_sets(&self, run: &LassoRun, horizon: usize) -> Vec<BTreeSet<Value>> {
        let trace = run.state_trace();
        self.finiteness
            .iter()
            .map(|c| {
                (0..horizon)
                    .filter(|&m| c.selector.is_selected(&trace, m))
                    .map(|m| run.config_at(m).regs[c.register.idx()])
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::RegisterAutomaton;
    use crate::run::Config;
    use rega_data::{Database, Schema, SigmaType};

    fn two_state_free() -> ExtendedAutomaton {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(p);
        ra.add_transition(p, SigmaType::empty(1), q).unwrap();
        ra.add_transition(q, SigmaType::empty(1), p).unwrap();
        ExtendedAutomaton::new(ra)
    }

    /// Selector for "position is even" on the alternating trace (p q)^ω:
    /// before-prefix has even length. DFA over {p,q} counting parity.
    fn even_selector(states: Vec<StateId>) -> PositionSelector {
        let n = states.len();
        let before = Dfa::from_parts(
            states.clone(),
            0,
            vec![true, false],
            vec![vec![1; n], vec![0; n]],
        );
        let mut nba = Nba::new(states, 1);
        nba.set_init(0);
        nba.set_accepting(0, true);
        for li in 0..nba.alphabet().len() {
            let letter = nba.alphabet()[li];
            nba.add_transition(0, &letter, 0);
        }
        PositionSelector {
            components: vec![(before, nba)],
        }
    }

    #[test]
    fn position_selector_even() {
        let sel = even_selector(vec![StateId(0), StateId(1)]);
        let trace = Lasso::periodic(vec![StateId(0), StateId(1)]);
        assert!(sel.is_selected(&trace, 0));
        assert!(!sel.is_selected(&trace, 1));
        assert!(sel.is_selected(&trace, 4));
        assert!(!sel.is_selected(&trace, 7));
    }

    #[test]
    fn shift_lasso_correct() {
        let l = Lasso::new(vec![StateId(9)], vec![StateId(0), StateId(1)]);
        let s = shift_lasso(&l, 2);
        // positions 2,3,4,... of l are 1,0,1,0...
        assert_eq!(*s.at(0), *l.at(2));
        assert_eq!(*s.at(1), *l.at(3));
        assert_eq!(*s.at(5), *l.at(7));
    }

    #[test]
    fn finiteness_value_set_on_lasso() {
        let ext = two_state_free();
        let states: Vec<StateId> = ext.ra().states().collect();
        let mut enh = EnhancedAutomaton::new(ext);
        enh.add_finiteness(FinitenessConstraint {
            register: RegIdx(0),
            selector: PositionSelector::all(states),
        });
        let p = StateId(0);
        let q = StateId(1);
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(q, vec![Value(2)]),
            ],
            vec![crate::automaton::TransId(0), crate::automaton::TransId(1)],
            0,
        );
        let sets = enh.finiteness_value_sets(&run, 10);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 2);
    }

    /// Tuple inequality of arity 1: α at even positions, β at odd positions
    /// (values at even and odd positions must differ).
    fn even_odd_neq(states: Vec<StateId>) -> TupleInequality {
        // Marked NBA: read letters; require exactly one α-mark (bit 0) at an
        // even position and one β-mark (bit 1) at an odd position.
        // States: (parity, seen_alpha, seen_beta) → index.
        let mut alphabet = Vec::new();
        for s in &states {
            for mark in 0..4u32 {
                alphabet.push((*s, mark));
            }
        }
        let idx = |par: usize, sa: usize, sb: usize| par + 2 * sa + 4 * sb;
        let mut nba = Nba::new(alphabet.clone(), 8);
        nba.set_init(idx(0, 0, 0));
        for par in 0..2 {
            for sa in 0..2 {
                for sb in 0..2 {
                    let s = idx(par, sa, sb);
                    nba.set_accepting(s, sa == 1 && sb == 1);
                    for letter in &alphabet {
                        let (_, mark) = *letter;
                        let want_a = mark & 1 != 0;
                        let want_b = mark & 2 != 0;
                        // α only at even, β only at odd; no double-marking.
                        if want_a && (par != 0 || sa == 1) {
                            continue;
                        }
                        if want_b && (par != 1 || sb == 1) {
                            continue;
                        }
                        let t = idx(
                            1 - par,
                            sa.max(usize::from(want_a)),
                            sb.max(usize::from(want_b)),
                        );
                        nba.add_transition(s, letter, t);
                    }
                }
            }
        }
        TupleInequality {
            i_regs: vec![RegIdx(0)],
            j_regs: vec![RegIdx(0)],
            selector: nba,
        }
    }

    #[test]
    fn tuple_inequality_even_vs_odd() {
        let ext = two_state_free();
        let states: Vec<StateId> = ext.ra().states().collect();
        let mut enh = EnhancedAutomaton::new(ext);
        enh.add_tuple_inequality(even_odd_neq(states));
        let db = Database::new(Schema::empty());
        let p = StateId(0);
        let q = StateId(1);
        let good = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(q, vec![Value(2)]),
            ],
            vec![crate::automaton::TransId(0), crate::automaton::TransId(1)],
            0,
        );
        assert!(enh.check_lasso_run(&db, &good, None).is_ok());
        // Same value at even and odd positions: violation.
        let bad = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(q, vec![Value(1)]),
            ],
            vec![crate::automaton::TransId(0), crate::automaton::TransId(1)],
            0,
        );
        assert!(enh.check_lasso_run(&db, &bad, None).is_err());
    }

    #[test]
    fn tuple_selector_marks_positions() {
        let ext = two_state_free();
        let states: Vec<StateId> = ext.ra().states().collect();
        let c = even_odd_neq(states);
        let trace = Lasso::periodic(vec![StateId(0), StateId(1)]);
        assert!(c.is_selected(&trace, &[0], &[1]));
        assert!(c.is_selected(&trace, &[2], &[5]));
        assert!(!c.is_selected(&trace, &[1], &[2])); // α must be even
        assert!(!c.is_selected(&trace, &[0], &[2])); // β must be odd
    }
}
