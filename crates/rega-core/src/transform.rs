//! Normal forms of register automata (Section 2):
//!
//! * **Completion** — every transition type is replaced by its complete
//!   extensions (Example 2). Exponential in the worst case.
//! * **State-driven form** — each state determines its unique outgoing type
//!   (Example 3). Quadratic: states become `(q, δ)` pairs.
//!
//! Both preserve the register traces; the experiment suite E2 measures the
//! blow-ups.

use crate::automaton::{RegisterAutomaton, StateId};
use crate::error::CoreError;
use crate::extended::{ExtendedAutomaton, GlobalConstraint};
use rega_automata::Regex;
use rega_data::{Budget, SatCache, SigmaType};

/// Replaces every transition type by all of its complete extensions.
/// Register traces are preserved (each original step is refined into the
/// nondeterministic choice of a completion).
pub fn complete(ra: &RegisterAutomaton) -> Result<RegisterAutomaton, CoreError> {
    complete_cached(ra, &SatCache::new(ra.schema().clone()))
}

/// [`complete`] with every completion enumeration and satisfiability check
/// memoized in `cache` — transitions sharing a type enumerate its
/// completions once.
pub fn complete_cached(
    ra: &RegisterAutomaton,
    cache: &SatCache,
) -> Result<RegisterAutomaton, CoreError> {
    complete_governed(ra, cache, &Budget::unlimited())
}

/// [`complete_cached`] under a [`Budget`]: the completion enumeration of
/// each transition type (the exponential step) and the per-completion
/// insertion loop both tick, and the interned-type ceiling is enforced
/// against `cache`.
pub fn complete_governed(
    ra: &RegisterAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<RegisterAutomaton, CoreError> {
    let _span = rega_obs::span!("transform.complete", states = ra.num_states());
    let mut out = RegisterAutomaton::new(ra.k(), ra.schema().clone());
    for s in ra.states() {
        let s2 = out.add_state(ra.state_name(s));
        debug_assert_eq!(s, s2);
        if ra.is_initial(s) {
            out.set_initial(s);
        }
        if ra.is_accepting(s) {
            out.set_accepting(s);
        }
    }
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        for completion in cache.completions_governed(&tr.ty, budget)? {
            budget.tick_mem("transform.complete", || cache.stats().distinct_types)?;
            out.add_transition_interned(tr.from, (*completion).clone(), tr.to, cache)?;
        }
    }
    rega_obs::event!(
        "transform.completed",
        transitions_in = ra.num_transitions(),
        transitions_out = out.num_transitions()
    );
    Ok(out)
}

/// The result of the state-driven construction: the new automaton plus the
/// surjection `α : Q′ → Q` onto the original states.
#[derive(Clone, Debug)]
pub struct StateDriven {
    /// The state-driven automaton.
    pub automaton: RegisterAutomaton,
    /// `state_map[s′] = α(s′)` — the original state of each new state.
    pub state_map: Vec<StateId>,
}

/// Converts to state-driven form: new states are the pairs `(q, δ)` where
/// `δ` is an outgoing type of `q`; the pair's unique outgoing type is `δ`.
///
/// States of the original automaton without outgoing transitions disappear
/// (they cannot occur in an infinite run).
pub fn state_driven(ra: &RegisterAutomaton) -> StateDriven {
    state_driven_cached(ra, &SatCache::new(ra.schema().clone()))
}

/// [`state_driven`] with transition validation memoized in `cache`. The
/// construction duplicates each type once per successor pair, so the cache
/// reduces the quadratic re-analysis to one analysis per distinct type.
pub fn state_driven_cached(ra: &RegisterAutomaton, cache: &SatCache) -> StateDriven {
    state_driven_governed(ra, cache, &Budget::unlimited())
        .expect("ungoverned state-driven cannot fail: every type is already validated")
}

/// [`state_driven_cached`] under a [`Budget`]: the quadratic transition
/// wiring — each type duplicated once per successor pair — ticks per pair,
/// so a hostile automaton with a dense successor structure is interruptible.
pub fn state_driven_governed(
    ra: &RegisterAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<StateDriven, CoreError> {
    let _span = rega_obs::span!("transform.state_driven", states = ra.num_states());
    // Distinct outgoing types per state.
    let mut types_of: Vec<Vec<SigmaType>> = vec![Vec::new(); ra.num_states()];
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        budget.tick("transform.state_driven")?;
        if !types_of[tr.from.idx()].contains(&tr.ty) {
            types_of[tr.from.idx()].push(tr.ty.clone());
        }
    }
    let mut out = RegisterAutomaton::new(ra.k(), ra.schema().clone());
    let mut state_map = Vec::new();
    // pair_id[q][type_index] = new state
    let mut pair_id: Vec<Vec<StateId>> = vec![Vec::new(); ra.num_states()];
    for q in ra.states() {
        for (xi, _) in types_of[q.idx()].iter().enumerate() {
            let name = format!("{}_{}", ra.state_name(q), xi);
            let id = out.add_state(&name);
            pair_id[q.idx()].push(id);
            state_map.push(q);
            if ra.is_initial(q) {
                out.set_initial(id);
            }
            if ra.is_accepting(q) {
                out.set_accepting(id);
            }
        }
    }
    // Transitions: ((p,δ), δ, (q,δ′)) for (p,δ,q) ∈ Δ and δ′ outgoing at q.
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        let xi = types_of[tr.from.idx()]
            .iter()
            .position(|ty| *ty == tr.ty)
            .expect("type recorded");
        let from2 = pair_id[tr.from.idx()][xi];
        for (to_xi, _) in types_of[tr.to.idx()].iter().enumerate() {
            budget.tick("transform.state_driven")?;
            let to2 = pair_id[tr.to.idx()][to_xi];
            out.add_transition_interned(from2, tr.ty.clone(), to2, cache)
                .expect("type already validated");
        }
    }
    Ok(StateDriven {
        automaton: out,
        state_map,
    })
}

/// State-driven form of an *extended* automaton: the underlying automaton is
/// converted and every global constraint's regular expression is lifted
/// through the surjection `α` (each original state letter becomes the
/// alternation of its preimages).
pub fn state_driven_extended(ext: &ExtendedAutomaton) -> ExtendedAutomaton {
    state_driven_extended_cached(ext, &SatCache::new(ext.ra().schema().clone()))
}

/// [`state_driven_extended`] with a shared [`SatCache`].
pub fn state_driven_extended_cached(
    ext: &ExtendedAutomaton,
    cache: &SatCache,
) -> ExtendedAutomaton {
    state_driven_extended_governed(ext, cache, &Budget::unlimited())
        .expect("ungoverned state-driven cannot fail: every type is already validated")
}

/// [`state_driven_extended_cached`] under a [`Budget`].
pub fn state_driven_extended_governed(
    ext: &ExtendedAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<ExtendedAutomaton, CoreError> {
    let sd = state_driven_governed(ext.ra(), cache, budget)?;
    let mut preimages: Vec<Vec<StateId>> = vec![Vec::new(); ext.ra().num_states()];
    for (new_idx, &orig) in sd.state_map.iter().enumerate() {
        preimages[orig.idx()].push(StateId(new_idx as u32));
    }
    let _ = preimages;
    let state_map = sd.state_map.clone();
    let mut out = ExtendedAutomaton::new(sd.automaton);
    for c in ext.constraints() {
        out.add_lifted_constraint(c, |s| state_map[s.idx()])
            .expect("constraint valid on lifted automaton");
    }
    Ok(out)
}

/// Completion of an extended automaton: constraints carry over unchanged
/// (the state set does not change).
pub fn complete_extended(ext: &ExtendedAutomaton) -> Result<ExtendedAutomaton, CoreError> {
    complete_extended_cached(ext, &SatCache::new(ext.ra().schema().clone()))
}

/// [`complete_extended`] with a shared [`SatCache`].
pub fn complete_extended_cached(
    ext: &ExtendedAutomaton,
    cache: &SatCache,
) -> Result<ExtendedAutomaton, CoreError> {
    complete_extended_governed(ext, cache, &Budget::unlimited())
}

/// [`complete_extended_cached`] under a [`Budget`].
pub fn complete_extended_governed(
    ext: &ExtendedAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<ExtendedAutomaton, CoreError> {
    let completed = complete_governed(ext.ra(), cache, budget)?;
    let mut out = ExtendedAutomaton::new(completed);
    for c in ext.constraints() {
        out.add_lifted_constraint(c, |s| s)?;
    }
    Ok(out)
}

/// *Partial* completion: every transition type is refined just enough to
/// decide each of the given atoms (each atom is conjoined either positively
/// or negatively, keeping only satisfiable combinations). Exponential only
/// in the number of atoms actually needed — the verifier uses this instead
/// of full completion, which blows up in the number of registers.
pub fn complete_for_atoms(
    ra: &RegisterAutomaton,
    atoms: &[rega_data::Literal],
) -> Result<RegisterAutomaton, CoreError> {
    complete_for_atoms_cached(ra, atoms, &SatCache::new(ra.schema().clone()))
}

/// [`complete_for_atoms`] with the per-variant satisfiability checks
/// memoized in `cache` — transitions sharing a type (and the shared
/// intermediate refinements they generate) are checked once.
pub fn complete_for_atoms_cached(
    ra: &RegisterAutomaton,
    atoms: &[rega_data::Literal],
    cache: &SatCache,
) -> Result<RegisterAutomaton, CoreError> {
    complete_for_atoms_governed(ra, atoms, cache, &Budget::unlimited())
}

/// [`complete_for_atoms_cached`] under a [`Budget`]: the variant set can
/// double per atom, so the refinement loop ticks per candidate variant and
/// enforces the interned-type ceiling against `cache`.
pub fn complete_for_atoms_governed(
    ra: &RegisterAutomaton,
    atoms: &[rega_data::Literal],
    cache: &SatCache,
    budget: &Budget,
) -> Result<RegisterAutomaton, CoreError> {
    let mut out = RegisterAutomaton::new(ra.k(), ra.schema().clone());
    for s in ra.states() {
        let s2 = out.add_state(ra.state_name(s));
        debug_assert_eq!(s, s2);
        if ra.is_initial(s) {
            out.set_initial(s);
        }
        if ra.is_accepting(s) {
            out.set_accepting(s);
        }
    }
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        let mut variants = vec![tr.ty.clone()];
        for atom in atoms {
            let mut next = Vec::new();
            for v in variants {
                budget.tick_mem("transform.complete_for_atoms", || {
                    cache.stats().distinct_types
                })?;
                let pos = v.with(atom.clone());
                if cache.is_consistent(&pos) {
                    next.push(pos);
                }
                let neg = v.with(atom.negated());
                if cache.is_consistent(&neg) {
                    next.push(neg);
                }
            }
            variants = next;
        }
        variants.sort();
        variants.dedup();
        for v in variants {
            out.add_transition_interned(tr.from, v, tr.to, cache)?;
        }
    }
    Ok(out)
}

/// [`complete_for_atoms`] for extended automata (constraints carry over).
pub fn complete_extended_for_atoms(
    ext: &ExtendedAutomaton,
    atoms: &[rega_data::Literal],
) -> Result<ExtendedAutomaton, CoreError> {
    complete_extended_for_atoms_cached(ext, atoms, &SatCache::new(ext.ra().schema().clone()))
}

/// [`complete_extended_for_atoms`] with a shared [`SatCache`].
pub fn complete_extended_for_atoms_cached(
    ext: &ExtendedAutomaton,
    atoms: &[rega_data::Literal],
    cache: &SatCache,
) -> Result<ExtendedAutomaton, CoreError> {
    complete_extended_for_atoms_governed(ext, atoms, cache, &Budget::unlimited())
}

/// [`complete_extended_for_atoms_cached`] under a [`Budget`].
pub fn complete_extended_for_atoms_governed(
    ext: &ExtendedAutomaton,
    atoms: &[rega_data::Literal],
    cache: &SatCache,
    budget: &Budget,
) -> Result<ExtendedAutomaton, CoreError> {
    let completed = complete_for_atoms_governed(ext.ra(), atoms, cache, budget)?;
    let mut out = ExtendedAutomaton::new(completed);
    for c in ext.constraints() {
        out.add_lifted_constraint(c, |s| s)?;
    }
    Ok(out)
}

/// Lifts a regex over original states to one over refined states via the
/// preimage sets.
pub fn lift_regex(regex: &Regex<StateId>, preimages: &[Vec<StateId>]) -> Regex<StateId> {
    match regex {
        Regex::Empty => Regex::Empty,
        Regex::Epsilon => Regex::Epsilon,
        Regex::Sym(s) => Regex::any_of(preimages[s.idx()].iter().copied()),
        Regex::Concat(parts) => {
            Regex::Concat(parts.iter().map(|p| lift_regex(p, preimages)).collect())
        }
        Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| lift_regex(p, preimages)).collect()),
        Regex::Star(inner) => Regex::Star(Box::new(lift_regex(inner, preimages))),
    }
}

/// Convenience accessor used by several constructions: the constraints of an
/// extended automaton (re-exported to avoid leaking monitor internals).
pub fn constraints(ext: &ExtendedAutomaton) -> &[GlobalConstraint] {
    ext.constraints()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::run::{Config, LassoRun};
    use rega_data::{Database, Literal, Schema, Term, Value};

    #[test]
    fn completion_of_example1() {
        let (a, _) = paper::example1();
        let c = complete(&a).unwrap();
        assert!(c.is_complete().unwrap());
        // Example 2: each of δ1, δ2, δ3 has exactly 2 completions... δ2 has
        // more (x2=y2 leaves x1, y1 free). Just check growth and validity.
        assert!(c.num_transitions() > a.num_transitions());
        assert_eq!(c.num_states(), a.num_states());
    }

    #[test]
    fn completion_of_delta1_has_two_variants() {
        // δ1 alone: x1=x2 ∧ x2=y2 completes into exactly 2 types (settle y1).
        let (a, _) = paper::example1();
        let q1 = a.state_by_name("q1").unwrap();
        let c = complete(&a).unwrap();
        assert_eq!(c.outgoing(q1).len(), 2);
    }

    #[test]
    fn state_driven_of_example1_matches_example3() {
        // Example 3: A' has three states q1(δ1), q2(δ2), q2(δ3) and five
        // transitions.
        let (a, _) = paper::example1();
        let sd = state_driven(&a);
        assert!(sd.automaton.is_state_driven());
        assert_eq!(sd.automaton.num_states(), 3);
        assert_eq!(sd.automaton.num_transitions(), 5);
    }

    #[test]
    fn state_driven_preserves_a_run() {
        let (a, _) = paper::example1();
        let sd = state_driven(&a);
        let a2 = &sd.automaton;
        let db = Database::new(Schema::empty());
        // Find the run (q1,δ1)(q2,δ2)(q2,δ3) looping, with register values.
        // State names: q1_0, q2_0 (δ2), q2_1 (δ3).
        let q1d1 = a2.state_by_name("q1_0").unwrap();
        // Identify which q2 pair has δ2 (self-loop capable) vs δ3.
        let q2a = a2.state_by_name("q2_0").unwrap();
        let q2b = a2.state_by_name("q2_1").unwrap();
        let ty_a = a2.state_type(q2a).unwrap().clone();
        let (q2_d2, q2_d3) = if ty_a.contains(&Literal::eq(Term::y(0), Term::y(1))) {
            (q2b, q2a)
        } else {
            (q2a, q2b)
        };
        let find = |from: StateId, to: StateId| {
            a2.outgoing(from)
                .iter()
                .copied()
                .find(|&t| a2.transition(t).to == to)
                .unwrap()
        };
        let run = LassoRun::new(
            vec![
                Config::new(q1d1, vec![Value(1), Value(1)]),
                Config::new(q2_d2, vec![Value(2), Value(1)]),
                Config::new(q2_d3, vec![Value(3), Value(1)]),
            ],
            vec![find(q1d1, q2_d2), find(q2_d2, q2_d3), find(q2_d3, q1d1)],
            0,
        );
        assert!(run.validate(a2, &db).is_ok());
    }

    #[test]
    fn state_driven_extended_lifts_constraints() {
        let ext = paper::example5();
        let sd = state_driven_extended(&ext);
        assert!(sd.ra().is_state_driven());
        assert_eq!(sd.constraints().len(), 1);
        // The lifted constraint DFA still matches p1 p2* p1 factors over
        // the refined states.
        let p1 = sd.ra().state_by_name("p1_0").unwrap();
        let p2a = sd.ra().state_by_name("p2_0").unwrap();
        let dfa = sd.constraints()[0].dfa();
        assert!(dfa.accepts(&[p1, p2a, p2a, p1]));
        assert!(!dfa.accepts(&[p2a, p1]));
    }

    #[test]
    fn complete_extended_keeps_constraints() {
        let ext = paper::example7();
        let c = complete_extended(&ext).unwrap();
        assert!(c.ra().is_complete().unwrap());
        assert_eq!(c.constraints().len(), 1);
    }

    #[test]
    fn state_driven_drops_dead_states() {
        let mut a = RegisterAutomaton::new(0, Schema::empty());
        let p = a.add_state("p");
        let dead = a.add_state("dead");
        a.set_initial(p);
        a.set_accepting(p);
        a.add_transition(p, SigmaType::empty(0), p).unwrap();
        let _ = dead; // no outgoing transitions
        let sd = state_driven(&a);
        assert_eq!(sd.automaton.num_states(), 1);
    }
}

/// Permutes the registers of an automaton: register `i` of the result is
/// register `perm[i]` of the input. Used to move the registers a view
/// should keep into the leading positions before projecting (the projection
/// constructions keep the first `m` registers).
pub fn permute_registers(ra: &RegisterAutomaton, perm: &[u16]) -> RegisterAutomaton {
    assert_eq!(perm.len(), ra.k() as usize, "permutation arity mismatch");
    let mut inverse = vec![0u16; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old as usize] = new as u16;
    }
    let mut out = RegisterAutomaton::new(ra.k(), ra.schema().clone());
    for s in ra.states() {
        let s2 = out.add_state(ra.state_name(s));
        debug_assert_eq!(s, s2);
        if ra.is_initial(s) {
            out.set_initial(s);
        }
        if ra.is_accepting(s) {
            out.set_accepting(s);
        }
    }
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        let ty = tr
            .ty
            .map_terms(|tm| tm.map_register(|r| rega_data::RegIdx(inverse[r.idx()])));
        out.add_transition(tr.from, ty, tr.to)
            .expect("permutation preserves validity");
    }
    out
}

#[cfg(test)]
mod permute_tests {
    use super::*;
    use crate::paper;
    use rega_data::{Literal, Term};

    #[test]
    fn permutation_swaps_literals() {
        let (ra, _) = paper::example1();
        let swapped = permute_registers(&ra, &[1, 0]);
        // δ1 was x1=x2 ∧ x2=y2; after the swap it is x2=x1 ∧ x1=y1.
        let t0 = &swapped.transition(crate::TransId(0)).ty;
        assert!(t0.contains(&Literal::eq(Term::x(0), Term::x(1))));
        assert!(t0.contains(&Literal::eq(Term::x(0), Term::y(0))));
    }

    #[test]
    fn double_permutation_is_identity() {
        let (ra, _) = paper::example1();
        let twice = permute_registers(&permute_registers(&ra, &[1, 0]), &[1, 0]);
        for t in ra.transition_ids() {
            assert_eq!(ra.transition(t).ty, twice.transition(t).ty);
        }
    }
}
