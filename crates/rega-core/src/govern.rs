//! Resource governance for the exponential constructions (re-exported from
//! `rega-data`, where the primitives live next to the σ-type machinery they
//! must be able to interrupt).
//!
//! Every exponential-prone entry point in the workspace has a `*_governed`
//! variant taking a [`Budget`]:
//!
//! | construction | governed entry point |
//! |---|---|
//! | completion (Example 2) | [`transform::complete_governed`](crate::transform::complete_governed) |
//! | partial completion | [`transform::complete_for_atoms_governed`](crate::transform::complete_for_atoms_governed) |
//! | state-driven form (Example 3) | [`transform::state_driven_governed`](crate::transform::state_driven_governed) |
//! | `SControl(A)` NBA (Theorem 9) | [`symbolic::scontrol_nba_governed`](crate::symbolic::scontrol_nba_governed) |
//! | emptiness (Corollary 10) | `rega-analysis::emptiness::check_emptiness_governed` |
//! | class structure | `rega-analysis::classes::ClassStructure::build_governed` |
//! | chase / universal witness | `rega-analysis::chase::universal_witness_database_governed` |
//! | Prop 20 projection | `rega-views::prop20::project_register_automaton_governed` |
//! | Thm 13 projection | `rega-views::thm13::project_extended_governed` |
//! | Thm 24 projection | `rega-views::thm24::project_hiding_database_governed` |
//! | completion enumeration itself | [`rega_data::SigmaType::completions_governed`] |
//!
//! The ungoverned `*_cached` entry points all delegate with
//! [`Budget::unlimited`], whose per-iteration cost is a single branch —
//! benchmark E17 pins the overhead on the e04/e15 workloads to the noise
//! floor. A budget trip surfaces as [`CoreError::Govern`](crate::CoreError)
//! carrying the [`GovernError`] diagnostics (phase, nodes expanded,
//! elapsed), emits a `govern.tripped` trace event, and bumps the
//! `govern.tripped` / `govern.tripped.<phase>` counters in the global
//! metrics registry.

pub use rega_data::govern::{Budget, BudgetSpec, CancelToken, GovernError, STRIDE};
