//! Symbolic control traces and `SControl(A)` (Section 2).
//!
//! An ω-word `((q_n, δ_n))` is a *symbolic control trace* of `A` if
//! (i) `q_0 ∈ I` and some state of `F` occurs infinitely often,
//! (ii) every `(q_n, δ_n, q_{n+1})` is a transition of `A`, and
//! (iii) consecutive types agree on the shared registers:
//! `δ_n|ȳ ≅ δ_{n+1}|x̄` under `y_i ↦ x_i`.
//!
//! `SControl(A)` is ω-regular; this module builds its Büchi automaton over
//! the alphabet of transition ids. The paper's Theorem 9 (stage 1) re-proves
//! the result of Koutsos–Vianu that `Control(A) = SControl(A)` for register
//! automata; the executable counterpart (turning a symbolic lasso into a
//! concrete database and run) lives in `rega-analysis`.

use crate::automaton::{RegisterAutomaton, TransId};
use crate::error::CoreError;
use rega_automata::{EdgeArena, Lasso, Nba, SuccessorSource};
use rega_data::{Budget, GovernError, SatCache, TypeBits, TypeBitsSpace, TypeId};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Builds the Büchi automaton recognizing `SControl(A)` over the alphabet of
/// transition ids, with a private, throwaway [`SatCache`]. Prefer
/// [`scontrol_nba_cached`] when a shared cache is available (repeated
/// builds, or a surrounding analysis that reuses the same types).
pub fn scontrol_nba(ra: &RegisterAutomaton) -> Result<Nba<TransId>, CoreError> {
    scontrol_nba_cached(ra, &SatCache::new(ra.schema().clone()))
}

/// Builds the Büchi automaton recognizing `SControl(A)` over the alphabet of
/// transition ids, memoizing every σ-type operation in `cache` (which must
/// be tied to `ra`'s schema).
///
/// NBA states: a fresh start state, plus one state per transition meaning
/// "this transition just fired". A letter `t` can follow `u` iff
/// `to(u) = from(t)` and the types of `u` and `t` agree on the shared
/// registers.
///
/// ## Accepting-state convention
///
/// State `1 + t.idx()` is Büchi-accepting iff `from(t) ∈ F`. This is the
/// correct orientation: after reading the letter at position `n` the NBA
/// sits in state `1 + t_n.idx()`, and condition (i) of symbolic control
/// traces asks that the control states `q_n = from(t_n)` visit `F`
/// infinitely often — exactly when letters whose *source* state is
/// accepting fire infinitely often. (A `to(t) ∈ F` convention would accept
/// the same lassos, since within a cycle the source and target states
/// coincide as sets, but it would misalign the state sequence by one
/// position relative to the paper's trace `((q_n, δ_n))`.) The run-based
/// oracle `LassoRun::validate` checks `F` against the looping
/// configurations `configs[loop_start..]` — the *sources* of the cycle's
/// transitions — and the differential test in `tests/verification_pipeline.rs`
/// pins the two against each other on automata where `from`/`to`
/// acceptance differ.
pub fn scontrol_nba_cached(
    ra: &RegisterAutomaton,
    cache: &SatCache,
) -> Result<Nba<TransId>, CoreError> {
    scontrol_nba_governed(ra, cache, &Budget::unlimited())
}

/// [`scontrol_nba_cached`] under a [`Budget`]: the quadratic wiring loop —
/// one joint-satisfiability check per ordered transition pair, each over a
/// `2k`-register encoding — ticks per pair, and the interned-type ceiling
/// is enforced against `cache`.
pub fn scontrol_nba_governed(
    ra: &RegisterAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<Nba<TransId>, CoreError> {
    let _span = rega_obs::span!("scontrol.nba_build");
    let alphabet: Vec<TransId> = ra.transition_ids().collect();
    let n = alphabet.len();
    // Compatibility of consecutive transitions: `t` can follow `u` iff
    // `to(u) = from(t)` and the types are *jointly satisfiable* on the
    // shared registers: `exists d_n d_{n+1} d_{n+2}` with `delta_u(d_n, d_{n+1})`
    // and `delta_t(d_{n+1}, d_{n+2})`. For complete types this coincides with
    // the paper's condition (iii) (`delta_u|y = delta_t|x` -- maximal restrictions
    // are jointly satisfiable iff equal); for incomplete types syntactic
    // equality would wrongly reject, e.g., `P(x1)` followed by `P(x1)`.
    // Computed once per distinct *pair of types* across the lifetime of
    // `cache`, via an encoding over 2k registers: `x(0..k) = d_n`,
    // `x(k..2k) = d_{n+1}`, `y(0..k) = d_{n+2}`.
    let type_of: Vec<TypeId> = alphabet
        .iter()
        .map(|&t| cache.intern(&ra.transition(t).ty))
        .collect();
    let compatible = |u: TransId, t: TransId| -> bool {
        cache.jointly_satisfiable_ids(type_of[u.idx()], type_of[t.idx()])
    };
    // State 0 = start; state 1 + t.idx() = "transition t just fired".
    let mut nba = Nba::new(alphabet.clone(), n + 1);
    nba.set_init(0);
    for &t in &alphabet {
        if ra.is_initial(ra.transition(t).from) {
            nba.add_transition(0, &t, 1 + t.idx());
        }
        nba.set_accepting(1 + t.idx(), ra.is_accepting(ra.transition(t).from));
    }
    let mut edges = 0u64;
    for &u in &alphabet {
        for &t in &alphabet {
            budget.tick_mem("scontrol.nba_build", || cache.stats().distinct_types)?;
            if ra.transition(u).to == ra.transition(t).from && compatible(u, t) {
                nba.add_transition(1 + u.idx(), &t, 1 + t.idx());
                edges += 1;
            }
        }
    }
    rega_obs::event!(
        "scontrol.nba_built",
        states = n + 1,
        edges = edges,
        types_interned = cache.stats().distinct_types
    );
    Ok(nba)
}

/// A lazy [`SuccessorSource`] revealing the `SControl(A)` Büchi automaton
/// on demand, without materializing it.
///
/// States and acceptance follow [`scontrol_nba_cached`] exactly (state 0 =
/// start, state `1 + t.idx()` = "transition `t` just fired", accepting iff
/// `from(t) ∈ F`), and edges are produced in ascending letter order — so the
/// generic emptiness engine traverses precisely the automaton the eager
/// builder would produce, but only wires the states the search reaches. On
/// satisfiable instances with an early witness this skips most of the
/// quadratic wiring loop.
///
/// Joint-satisfiability of consecutive types — the per-edge test — runs on
/// the [`TypeBits`] word-level kernel when the schema/register fragment
/// supports it (`3k + |consts| ≤ 16` terms), falling back to the memoized
/// [`SatCache`] path otherwise. Counters `typebits.joint_fast` /
/// `typebits.joint_fallback` record which path served each pair.
///
/// ## Governance
///
/// Expansion ticks the [`Budget`] once per candidate letter (phase
/// `emptiness.on_the_fly.expand`) — the same per-pair granularity as the
/// eager wiring loop. The search engine in `rega-automata` cannot carry a
/// `Result` through its traversal, so a trip is *stashed* in a shared cell
/// ([`SControlSource::trip_handle`]) and the source thereafter reports no
/// edges, which drains the search promptly; callers poll the cell from
/// their abort hook and re-raise the stashed [`GovernError`]. A tripped
/// expansion is **not** recorded in the arena and memoizes nothing.
pub struct SControlSource<'a> {
    ra: &'a RegisterAutomaton,
    cache: &'a SatCache,
    budget: &'a Budget,
    alphabet: Vec<TransId>,
    inits: [usize; 1],
    type_of: Vec<TypeId>,
    /// Bitset kernel for joint-satisfiability, when the fragment supports it.
    space: Option<Arc<TypeBitsSpace>>,
    /// Per-transition `TypeBits`, aligned with `alphabet`.
    bits: Vec<Option<TypeBits>>,
    arena: EdgeArena,
    scratch: Vec<(u32, u32)>,
    trip: Rc<RefCell<Option<GovernError>>>,
    nodes_ctr: rega_obs::Counter,
    edges_ctr: rega_obs::Counter,
    fast_ctr: rega_obs::Counter,
    fallback_ctr: rega_obs::Counter,
}

impl<'a> SControlSource<'a> {
    /// Prepares a lazy source over `ra`'s symbolic control automaton.
    ///
    /// Interns every transition type into `cache` up front (linear, exactly
    /// what the eager builder does) and encodes each into [`TypeBits`] when
    /// the joint-satisfiability kernel is available for `ra`'s fragment.
    pub fn new(ra: &'a RegisterAutomaton, cache: &'a SatCache, budget: &'a Budget) -> Self {
        let alphabet: Vec<TransId> = ra.transition_ids().collect();
        let type_of: Vec<TypeId> = alphabet
            .iter()
            .map(|&t| cache.intern(&ra.transition(t).ty))
            .collect();
        let space = cache
            .typebits_space(ra.k())
            .filter(|sp| sp.supports_joint());
        let bits = match &space {
            Some(_) => type_of.iter().map(|&id| cache.typebits(id)).collect(),
            None => vec![None; type_of.len()],
        };
        let n = alphabet.len();
        let registry = rega_obs::global();
        SControlSource {
            ra,
            cache,
            budget,
            inits: [0],
            type_of,
            space,
            bits,
            arena: EdgeArena::new(n + 1),
            scratch: Vec::new(),
            trip: Rc::new(RefCell::new(None)),
            nodes_ctr: registry.counter("emptiness.on_the_fly.nodes_expanded"),
            edges_ctr: registry.counter("emptiness.on_the_fly.edges_wired"),
            fast_ctr: registry.counter("typebits.joint_fast"),
            fallback_ctr: registry.counter("typebits.joint_fallback"),
            alphabet,
        }
    }

    /// Shared cell a budget trip is stashed in. Abort hooks poll it (the
    /// engine's traversal cannot return `Result`); the caller re-raises the
    /// error after the search drains.
    pub fn trip_handle(&self) -> Rc<RefCell<Option<GovernError>>> {
        Rc::clone(&self.trip)
    }

    /// Takes the stashed budget trip, if any.
    pub fn take_trip(&self) -> Option<GovernError> {
        self.trip.borrow_mut().take()
    }

    /// The arena backing expanded states (partial-progress diagnostics).
    pub fn arena(&self) -> &EdgeArena {
        &self.arena
    }

    /// Whether the pair `(u, t)` of transitions is compatible: `t` may
    /// directly follow `u` in a symbolic control trace.
    fn compatible(&self, u: usize, t: usize) -> bool {
        if let (Some(sp), Some(a), Some(b)) = (&self.space, &self.bits[u], &self.bits[t]) {
            if let Some(sat) = sp.jointly_satisfiable(a, b) {
                self.fast_ctr.inc();
                return sat;
            }
        }
        self.fallback_ctr.inc();
        self.cache
            .jointly_satisfiable_ids(self.type_of[u], self.type_of[t])
    }

    /// Computes the out-edges of `s` into `scratch`, ticking the budget once
    /// per candidate letter. `Err` means the budget tripped mid-expansion.
    fn expand_into_scratch(&mut self, s: usize) -> Result<(), GovernError> {
        self.scratch.clear();
        let cache = self.cache;
        if s == 0 {
            for (ti, &t) in self.alphabet.iter().enumerate() {
                self.budget.tick_mem("emptiness.on_the_fly.expand", || {
                    cache.stats().distinct_types
                })?;
                if self.ra.is_initial(self.ra.transition(t).from) {
                    self.scratch.push((ti as u32, (1 + ti) as u32));
                }
            }
        } else {
            let u = s - 1;
            let u_to = self.ra.transition(self.alphabet[u]).to;
            for (ti, &t) in self.alphabet.iter().enumerate() {
                self.budget.tick_mem("emptiness.on_the_fly.expand", || {
                    cache.stats().distinct_types
                })?;
                if self.ra.transition(t).from == u_to && self.compatible(u, ti) {
                    self.scratch.push((ti as u32, (1 + ti) as u32));
                }
            }
        }
        Ok(())
    }
}

impl SuccessorSource for SControlSource<'_> {
    type L = TransId;

    fn num_states(&self) -> usize {
        self.alphabet.len() + 1
    }

    fn alphabet(&self) -> &[TransId] {
        &self.alphabet
    }

    fn inits(&self) -> &[usize] {
        &self.inits
    }

    fn is_accepting(&self, s: usize) -> bool {
        // Matches scontrol_nba_cached: state 1 + t.idx() accepts iff
        // from(t) ∈ F; the start state never does.
        s > 0 && {
            let t = self.alphabet[s - 1];
            self.ra.is_accepting(self.ra.transition(t).from)
        }
    }

    fn edges(&mut self, s: usize) -> &[(u32, u32)] {
        const EMPTY: &[(u32, u32)] = &[];
        if self.trip.borrow().is_some() {
            return EMPTY;
        }
        if !self.arena.is_expanded(s) {
            if let Err(g) = self.expand_into_scratch(s) {
                *self.trip.borrow_mut() = Some(g);
                return EMPTY;
            }
            self.nodes_ctr.inc();
            self.edges_ctr.add(self.scratch.len() as u64);
            let scratch = std::mem::take(&mut self.scratch);
            self.arena.expand(s, scratch.iter().copied());
            self.scratch = scratch;
        }
        self.arena.get(s).expect("just expanded")
    }
}

/// Whether a lasso of transition ids is a symbolic control trace of `A`.
pub fn is_symbolic_control_trace(
    ra: &RegisterAutomaton,
    w: &Lasso<TransId>,
) -> Result<bool, CoreError> {
    Ok(scontrol_nba(ra)?.accepts_lasso(w))
}

/// Finds some symbolic control trace of `A` (a lasso), or `None` if there is
/// none. This is the (database-free) skeleton of the emptiness check; the
/// full emptiness procedure for *extended* automata additionally enforces
/// the global constraints (see `rega-analysis::emptiness`).
pub fn find_symbolic_control_trace(
    ra: &RegisterAutomaton,
) -> Result<Option<Lasso<TransId>>, CoreError> {
    Ok(rega_automata::emptiness::find_accepting_lasso(
        &scontrol_nba(ra)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use rega_data::{Literal, Schema, SigmaType, Term};

    #[test]
    fn example1_control_trace_is_symbolic() {
        let (ra, _) = paper::example1();
        // Control(A) = ((q1,δ1)(q2,δ2)*(q2,δ3))^ω — check one instance.
        let w = Lasso::periodic(vec![TransId(0), TransId(1), TransId(1), TransId(2)]);
        assert!(is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn example1_wrong_wiring_rejected() {
        let (ra, _) = paper::example1();
        // δ3 must be followed by δ1 (back at q1): repeating δ3 is not wired.
        let w = Lasso::periodic(vec![TransId(2)]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn type_agreement_enforced() {
        // p --(y1=y1... empty)--> p with two types disagreeing on x1=y1 vs
        // the next type's pre-side.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(p);
        // δa: y-side says nothing; post restricted to y is empty: x side of
        // δb says x1 ≠ x1? cannot — use relation-free disagreement:
        // δa: y1 = x1 (post side: nothing about y alone) — need types whose
        // post/pre restrictions differ. Use k=2:
        let _ = (p, q);
        let mut ra = RegisterAutomaton::new(2, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(p);
        // δa forces y1 = y2; δb's pre side forces x1 ≠ x2: incompatible.
        let da = SigmaType::new(2, [Literal::eq(Term::y(0), Term::y(1))]);
        let db = SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(1))]);
        let ta = ra.add_transition(p, da, q).unwrap();
        let tb = ra.add_transition(q, db, p).unwrap();
        let w = Lasso::periodic(vec![ta, tb]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn buchi_condition_on_traces() {
        // q1 initial+accepting, q2 not accepting; loop at q2 forever after
        // leaving q1 is not accepting.
        let mut ra = RegisterAutomaton::new(0, Schema::empty());
        let q1 = ra.add_state("q1");
        let q2 = ra.add_state("q2");
        ra.set_initial(q1);
        ra.set_accepting(q1);
        let t1 = ra.add_transition(q1, SigmaType::empty(0), q2).unwrap();
        let t2 = ra.add_transition(q2, SigmaType::empty(0), q2).unwrap();
        let w = Lasso::new(vec![t1], vec![t2]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn find_trace_in_nonempty_automaton() {
        let (ra, _) = paper::example1();
        let w = find_symbolic_control_trace(&ra).unwrap().unwrap();
        assert!(is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn lazy_source_matches_eager_nba() {
        // Edge-for-edge agreement between the lazy source and the
        // materialized SControl NBA on the paper's automata.
        for ext in [
            paper::example1().0,
            paper::example5().ra().clone(),
            paper::example7().ra().clone(),
            paper::example8().ra().clone(),
        ] {
            let cache = SatCache::new(ext.schema().clone());
            let budget = Budget::unlimited();
            let nba = scontrol_nba_cached(&ext, &cache).unwrap();
            let mut src = SControlSource::new(&ext, &cache, &budget);
            assert_eq!(src.num_states(), nba.num_states());
            assert_eq!(src.alphabet(), nba.alphabet());
            assert_eq!(src.inits(), nba.inits());
            for s in 0..nba.num_states() {
                assert_eq!(src.is_accepting(s), nba.is_accepting(s), "state {s}");
                let eager: Vec<(u32, u32)> = (0..nba.alphabet().len())
                    .flat_map(|li| {
                        nba.successors_idx(s, li)
                            .iter()
                            .map(move |&t| (li as u32, t as u32))
                    })
                    .collect();
                assert_eq!(src.edges(s), &eager[..], "state {s}");
            }
            assert!(src.take_trip().is_none());
        }
    }

    #[test]
    fn lazy_source_same_lasso_as_eager() {
        let (ra, _) = paper::example1();
        let cache = SatCache::new(ra.schema().clone());
        let budget = Budget::unlimited();
        let eager = find_symbolic_control_trace(&ra).unwrap().unwrap();
        let mut src = SControlSource::new(&ra, &cache, &budget);
        let lazy = rega_automata::emptiness::find_accepting_lasso_in(&mut src).unwrap();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn lazy_source_stashes_budget_trip() {
        let (ra, _) = paper::example1();
        let cache = SatCache::new(ra.schema().clone());
        let budget = rega_data::Budget::start(&rega_data::BudgetSpec {
            max_nodes: Some(2),
            ..rega_data::BudgetSpec::default()
        });
        let mut src = SControlSource::new(&ra, &cache, &budget);
        let trip = src.trip_handle();
        // State 0 expansion ticks once per transition (3 > 2): trips.
        assert_eq!(src.edges(0), &[] as &[(u32, u32)]);
        let g = trip.borrow().clone().expect("budget tripped");
        assert_eq!(g.phase(), "emptiness.on_the_fly.expand");
        // Nothing was recorded; subsequent queries stay empty and cheap.
        assert_eq!(src.arena().nodes_expanded(), 0);
        assert_eq!(src.edges(1), &[] as &[(u32, u32)]);
        assert!(src.take_trip().is_some());
    }

    #[test]
    fn find_trace_empty_automaton() {
        // No accepting state reachable on a cycle.
        let mut ra = RegisterAutomaton::new(0, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(q); // q has no outgoing transitions
        ra.add_transition(p, SigmaType::empty(0), q).unwrap();
        assert!(find_symbolic_control_trace(&ra).unwrap().is_none());
    }
}
