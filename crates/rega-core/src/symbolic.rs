//! Symbolic control traces and `SControl(A)` (Section 2).
//!
//! An ω-word `((q_n, δ_n))` is a *symbolic control trace* of `A` if
//! (i) `q_0 ∈ I` and some state of `F` occurs infinitely often,
//! (ii) every `(q_n, δ_n, q_{n+1})` is a transition of `A`, and
//! (iii) consecutive types agree on the shared registers:
//! `δ_n|ȳ ≅ δ_{n+1}|x̄` under `y_i ↦ x_i`.
//!
//! `SControl(A)` is ω-regular; this module builds its Büchi automaton over
//! the alphabet of transition ids. The paper's Theorem 9 (stage 1) re-proves
//! the result of Koutsos–Vianu that `Control(A) = SControl(A)` for register
//! automata; the executable counterpart (turning a symbolic lasso into a
//! concrete database and run) lives in `rega-analysis`.

use crate::automaton::{RegisterAutomaton, TransId};
use crate::error::CoreError;
use rega_automata::{Lasso, Nba};
use rega_data::{Budget, SatCache, TypeId};

/// Builds the Büchi automaton recognizing `SControl(A)` over the alphabet of
/// transition ids, with a private, throwaway [`SatCache`]. Prefer
/// [`scontrol_nba_cached`] when a shared cache is available (repeated
/// builds, or a surrounding analysis that reuses the same types).
pub fn scontrol_nba(ra: &RegisterAutomaton) -> Result<Nba<TransId>, CoreError> {
    scontrol_nba_cached(ra, &SatCache::new(ra.schema().clone()))
}

/// Builds the Büchi automaton recognizing `SControl(A)` over the alphabet of
/// transition ids, memoizing every σ-type operation in `cache` (which must
/// be tied to `ra`'s schema).
///
/// NBA states: a fresh start state, plus one state per transition meaning
/// "this transition just fired". A letter `t` can follow `u` iff
/// `to(u) = from(t)` and the types of `u` and `t` agree on the shared
/// registers.
///
/// ## Accepting-state convention
///
/// State `1 + t.idx()` is Büchi-accepting iff `from(t) ∈ F`. This is the
/// correct orientation: after reading the letter at position `n` the NBA
/// sits in state `1 + t_n.idx()`, and condition (i) of symbolic control
/// traces asks that the control states `q_n = from(t_n)` visit `F`
/// infinitely often — exactly when letters whose *source* state is
/// accepting fire infinitely often. (A `to(t) ∈ F` convention would accept
/// the same lassos, since within a cycle the source and target states
/// coincide as sets, but it would misalign the state sequence by one
/// position relative to the paper's trace `((q_n, δ_n))`.) The run-based
/// oracle `LassoRun::validate` checks `F` against the looping
/// configurations `configs[loop_start..]` — the *sources* of the cycle's
/// transitions — and the differential test in `tests/verification_pipeline.rs`
/// pins the two against each other on automata where `from`/`to`
/// acceptance differ.
pub fn scontrol_nba_cached(
    ra: &RegisterAutomaton,
    cache: &SatCache,
) -> Result<Nba<TransId>, CoreError> {
    scontrol_nba_governed(ra, cache, &Budget::unlimited())
}

/// [`scontrol_nba_cached`] under a [`Budget`]: the quadratic wiring loop —
/// one joint-satisfiability check per ordered transition pair, each over a
/// `2k`-register encoding — ticks per pair, and the interned-type ceiling
/// is enforced against `cache`.
pub fn scontrol_nba_governed(
    ra: &RegisterAutomaton,
    cache: &SatCache,
    budget: &Budget,
) -> Result<Nba<TransId>, CoreError> {
    let _span = rega_obs::span!("scontrol.nba_build");
    let alphabet: Vec<TransId> = ra.transition_ids().collect();
    let n = alphabet.len();
    // Compatibility of consecutive transitions: `t` can follow `u` iff
    // `to(u) = from(t)` and the types are *jointly satisfiable* on the
    // shared registers: `exists d_n d_{n+1} d_{n+2}` with `delta_u(d_n, d_{n+1})`
    // and `delta_t(d_{n+1}, d_{n+2})`. For complete types this coincides with
    // the paper's condition (iii) (`delta_u|y = delta_t|x` -- maximal restrictions
    // are jointly satisfiable iff equal); for incomplete types syntactic
    // equality would wrongly reject, e.g., `P(x1)` followed by `P(x1)`.
    // Computed once per distinct *pair of types* across the lifetime of
    // `cache`, via an encoding over 2k registers: `x(0..k) = d_n`,
    // `x(k..2k) = d_{n+1}`, `y(0..k) = d_{n+2}`.
    let type_of: Vec<TypeId> = alphabet
        .iter()
        .map(|&t| cache.intern(&ra.transition(t).ty))
        .collect();
    let compatible = |u: TransId, t: TransId| -> bool {
        cache.jointly_satisfiable_ids(type_of[u.idx()], type_of[t.idx()])
    };
    // State 0 = start; state 1 + t.idx() = "transition t just fired".
    let mut nba = Nba::new(alphabet.clone(), n + 1);
    nba.set_init(0);
    for &t in &alphabet {
        if ra.is_initial(ra.transition(t).from) {
            nba.add_transition(0, &t, 1 + t.idx());
        }
        nba.set_accepting(1 + t.idx(), ra.is_accepting(ra.transition(t).from));
    }
    let mut edges = 0u64;
    for &u in &alphabet {
        for &t in &alphabet {
            budget.tick_mem("scontrol.nba_build", || cache.stats().distinct_types)?;
            if ra.transition(u).to == ra.transition(t).from && compatible(u, t) {
                nba.add_transition(1 + u.idx(), &t, 1 + t.idx());
                edges += 1;
            }
        }
    }
    rega_obs::event!(
        "scontrol.nba_built",
        states = n + 1,
        edges = edges,
        types_interned = cache.stats().distinct_types
    );
    Ok(nba)
}

/// Whether a lasso of transition ids is a symbolic control trace of `A`.
pub fn is_symbolic_control_trace(
    ra: &RegisterAutomaton,
    w: &Lasso<TransId>,
) -> Result<bool, CoreError> {
    Ok(scontrol_nba(ra)?.accepts_lasso(w))
}

/// Finds some symbolic control trace of `A` (a lasso), or `None` if there is
/// none. This is the (database-free) skeleton of the emptiness check; the
/// full emptiness procedure for *extended* automata additionally enforces
/// the global constraints (see `rega-analysis::emptiness`).
pub fn find_symbolic_control_trace(
    ra: &RegisterAutomaton,
) -> Result<Option<Lasso<TransId>>, CoreError> {
    Ok(rega_automata::emptiness::find_accepting_lasso(
        &scontrol_nba(ra)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use rega_data::{Literal, Schema, SigmaType, Term};

    #[test]
    fn example1_control_trace_is_symbolic() {
        let (ra, _) = paper::example1();
        // Control(A) = ((q1,δ1)(q2,δ2)*(q2,δ3))^ω — check one instance.
        let w = Lasso::periodic(vec![TransId(0), TransId(1), TransId(1), TransId(2)]);
        assert!(is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn example1_wrong_wiring_rejected() {
        let (ra, _) = paper::example1();
        // δ3 must be followed by δ1 (back at q1): repeating δ3 is not wired.
        let w = Lasso::periodic(vec![TransId(2)]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn type_agreement_enforced() {
        // p --(y1=y1... empty)--> p with two types disagreeing on x1=y1 vs
        // the next type's pre-side.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(p);
        // δa: y-side says nothing; post restricted to y is empty: x side of
        // δb says x1 ≠ x1? cannot — use relation-free disagreement:
        // δa: y1 = x1 (post side: nothing about y alone) — need types whose
        // post/pre restrictions differ. Use k=2:
        let _ = (p, q);
        let mut ra = RegisterAutomaton::new(2, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(p);
        // δa forces y1 = y2; δb's pre side forces x1 ≠ x2: incompatible.
        let da = SigmaType::new(2, [Literal::eq(Term::y(0), Term::y(1))]);
        let db = SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(1))]);
        let ta = ra.add_transition(p, da, q).unwrap();
        let tb = ra.add_transition(q, db, p).unwrap();
        let w = Lasso::periodic(vec![ta, tb]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn buchi_condition_on_traces() {
        // q1 initial+accepting, q2 not accepting; loop at q2 forever after
        // leaving q1 is not accepting.
        let mut ra = RegisterAutomaton::new(0, Schema::empty());
        let q1 = ra.add_state("q1");
        let q2 = ra.add_state("q2");
        ra.set_initial(q1);
        ra.set_accepting(q1);
        let t1 = ra.add_transition(q1, SigmaType::empty(0), q2).unwrap();
        let t2 = ra.add_transition(q2, SigmaType::empty(0), q2).unwrap();
        let w = Lasso::new(vec![t1], vec![t2]);
        assert!(!is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn find_trace_in_nonempty_automaton() {
        let (ra, _) = paper::example1();
        let w = find_symbolic_control_trace(&ra).unwrap().unwrap();
        assert!(is_symbolic_control_trace(&ra, &w).unwrap());
    }

    #[test]
    fn find_trace_empty_automaton() {
        // No accepting state reachable on a cycle.
        let mut ra = RegisterAutomaton::new(0, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(q); // q has no outgoing transitions
        ra.add_transition(p, SigmaType::empty(0), q).unwrap();
        assert!(find_symbolic_control_trace(&ra).unwrap().is_none());
    }
}
