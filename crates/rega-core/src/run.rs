//! Runs of register automata: finite prefixes and ultimately periodic
//! (lasso) runs.
//!
//! A run of `A` over a database `D` is an *infinite* sequence of triples
//! `(d̄_n, q_n, δ_n)` (Section 2). Two finite presentations are provided:
//!
//! * [`FiniteRun`] — a valid finite prefix of a run (used by the simulator
//!   and the differential tests);
//! * [`LassoRun`] — an ultimately periodic run, where both the control and
//!   the register values repeat with a period. Not every run of a register
//!   automaton is ultimately periodic (Example 7's all-distinct runs are
//!   not), but lasso runs suffice as *witnesses* for emptiness and are what
//!   the decision procedures construct.

use crate::automaton::{RegisterAutomaton, StateId, TransId};
use crate::error::CoreError;
use rega_automata::Lasso;
use rega_data::{Database, Value};
use std::fmt;

/// A configuration: a control state plus the current register values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// The control state.
    pub state: StateId,
    /// The register values `d̄` (length `k`).
    pub regs: Vec<Value>,
}

impl Config {
    /// Creates a configuration.
    pub fn new(state: StateId, regs: Vec<Value>) -> Self {
        Config { state, regs }
    }
}

/// A valid finite prefix of a run: `configs.len() == trans.len() + 1`, and
/// `trans[i]` fires from `configs[i]` to `configs[i+1]`.
#[derive(Clone, Debug, Default)]
pub struct FiniteRun {
    /// The configurations visited.
    pub configs: Vec<Config>,
    /// The transitions fired between consecutive configurations.
    pub trans: Vec<TransId>,
}

impl FiniteRun {
    /// A run prefix consisting of a single initial configuration.
    pub fn start(config: Config) -> Self {
        FiniteRun {
            configs: vec![config],
            trans: Vec::new(),
        }
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the prefix is empty (no configurations).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Extends the run by one step.
    pub fn push(&mut self, t: TransId, config: Config) {
        self.trans.push(t);
        self.configs.push(config);
    }

    /// Checks structural and semantic validity of the prefix against the
    /// automaton and database (initial state, transition wiring, types).
    pub fn validate(&self, ra: &RegisterAutomaton, db: &Database) -> Result<(), CoreError> {
        if self.configs.len() != self.trans.len() + 1 {
            return Err(CoreError::InvalidRun(
                "configs must be one longer than trans".into(),
            ));
        }
        let first = &self.configs[0];
        if !ra.is_initial(first.state) {
            return Err(CoreError::InvalidRun("first state is not initial".into()));
        }
        for (i, &t) in self.trans.iter().enumerate() {
            let tr = ra.transition(t);
            let (cur, next) = (&self.configs[i], &self.configs[i + 1]);
            if tr.from != cur.state || tr.to != next.state {
                return Err(CoreError::InvalidRun(format!(
                    "transition {} does not connect step {}",
                    t.0, i
                )));
            }
            if cur.regs.len() != ra.k() as usize || next.regs.len() != ra.k() as usize {
                return Err(CoreError::InvalidRun(format!(
                    "register tuple arity mismatch at step {i}"
                )));
            }
            if !tr.ty.satisfied_by(db, &cur.regs, &next.regs) {
                return Err(CoreError::InvalidRun(format!(
                    "type not satisfied at step {i}"
                )));
            }
        }
        Ok(())
    }

    /// The register trace of the prefix.
    pub fn register_trace(&self) -> Vec<Vec<Value>> {
        self.configs.iter().map(|c| c.regs.clone()).collect()
    }

    /// The state trace of the prefix.
    pub fn state_trace(&self) -> Vec<StateId> {
        self.configs.iter().map(|c| c.state).collect()
    }

    /// The projection of the register trace to the first `m` registers.
    pub fn projected_register_trace(&self, m: usize) -> Vec<Vec<Value>> {
        self.configs.iter().map(|c| c.regs[..m].to_vec()).collect()
    }
}

/// An ultimately periodic run: positions `0, 1, 2, …` visit
/// `configs[0] … configs[n-1]` and then cycle through
/// `configs[loop_start] … configs[n-1]` forever. `trans[i]` fires from
/// position `i` to position `i+1`; the last transition `trans[n-1]` fires
/// from `configs[n-1]` back to `configs[loop_start]`.
#[derive(Clone, Debug)]
pub struct LassoRun {
    /// The configurations of positions `0..n`.
    pub configs: Vec<Config>,
    /// The transitions fired; same length as `configs`.
    pub trans: Vec<TransId>,
    /// Index where the loop starts (`< configs.len()`).
    pub loop_start: usize,
}

impl LassoRun {
    /// Creates a lasso run; panics on inconsistent lengths.
    pub fn new(configs: Vec<Config>, trans: Vec<TransId>, loop_start: usize) -> Self {
        assert_eq!(configs.len(), trans.len());
        assert!(loop_start < configs.len());
        LassoRun {
            configs,
            trans,
            loop_start,
        }
    }

    /// Total number of distinct positions stored.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the lasso stores no position (never true for valid lassos).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The period of the loop.
    pub fn period(&self) -> usize {
        self.configs.len() - self.loop_start
    }

    /// The configuration at (infinite-word) position `m`.
    pub fn config_at(&self, m: usize) -> &Config {
        if m < self.configs.len() {
            &self.configs[m]
        } else {
            let p = self.period();
            &self.configs[self.loop_start + (m - self.loop_start) % p]
        }
    }

    /// The transition fired at position `m`.
    pub fn trans_at(&self, m: usize) -> TransId {
        if m < self.trans.len() {
            self.trans[m]
        } else {
            let p = self.period();
            self.trans[self.loop_start + (m - self.loop_start) % p]
        }
    }

    /// Validity of the lasso run over the automaton and database: initial
    /// state, transition wiring (including the wrap-around step), type
    /// satisfaction, and Büchi acceptance (an accepting state in the loop).
    pub fn validate(&self, ra: &RegisterAutomaton, db: &Database) -> Result<(), CoreError> {
        if self.configs.is_empty() {
            return Err(CoreError::InvalidRun("empty lasso".into()));
        }
        if !ra.is_initial(self.configs[0].state) {
            return Err(CoreError::InvalidRun("first state is not initial".into()));
        }
        let n = self.configs.len();
        for i in 0..n {
            let tr = ra.transition(self.trans[i]);
            let cur = &self.configs[i];
            let next = if i + 1 < n {
                &self.configs[i + 1]
            } else {
                &self.configs[self.loop_start]
            };
            if tr.from != cur.state || tr.to != next.state {
                return Err(CoreError::InvalidRun(format!(
                    "transition {} does not connect position {}",
                    self.trans[i].0, i
                )));
            }
            if !tr.ty.satisfied_by(db, &cur.regs, &next.regs) {
                return Err(CoreError::InvalidRun(format!(
                    "type not satisfied at position {i}"
                )));
            }
        }
        if !self.configs[self.loop_start..]
            .iter()
            .any(|c| ra.is_accepting(c.state))
        {
            return Err(CoreError::InvalidRun(
                "no accepting state in the loop (Büchi condition)".into(),
            ));
        }
        Ok(())
    }

    /// The register trace as an ultimately periodic word of `k`-tuples.
    pub fn register_trace(&self) -> Lasso<Vec<Value>> {
        Lasso::new(
            self.configs[..self.loop_start]
                .iter()
                .map(|c| c.regs.clone())
                .collect(),
            self.configs[self.loop_start..]
                .iter()
                .map(|c| c.regs.clone())
                .collect(),
        )
    }

    /// The state trace as an ultimately periodic word.
    pub fn state_trace(&self) -> Lasso<StateId> {
        Lasso::new(
            self.configs[..self.loop_start]
                .iter()
                .map(|c| c.state)
                .collect(),
            self.configs[self.loop_start..]
                .iter()
                .map(|c| c.state)
                .collect(),
        )
    }

    /// The control trace as an ultimately periodic word of transition ids.
    pub fn control_trace(&self) -> Lasso<TransId> {
        Lasso::new(
            self.trans[..self.loop_start].to_vec(),
            self.trans[self.loop_start..].to_vec(),
        )
    }

    /// Projects the register values to the first `m` registers.
    pub fn projected_register_trace(&self, m: usize) -> Lasso<Vec<Value>> {
        self.register_trace().map(|regs| regs[..m].to_vec())
    }

    /// The first `n` positions as a finite run prefix.
    pub fn unroll(&self, n: usize) -> FiniteRun {
        assert!(n >= 1);
        let configs = (0..n).map(|m| self.config_at(m).clone()).collect();
        let trans = (0..n - 1).map(|m| self.trans_at(m)).collect();
        FiniteRun { configs, trans }
    }
}

impl fmt::Display for LassoRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.configs.iter().enumerate() {
            if i == self.loop_start {
                write!(f, "[loop: ")?;
            }
            write!(f, "(q{}; ", c.state.0)?;
            for (j, v) in c.regs.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ") ")?;
        }
        write!(f, "]ω")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_data::{Literal, Schema, SigmaType, Term};

    /// One-register automaton: p --(x1=y1)--> p (value constant forever).
    fn const_automaton() -> RegisterAutomaton {
        let mut a = RegisterAutomaton::new(1, Schema::empty());
        let p = a.add_state("p");
        a.set_initial(p);
        a.set_accepting(p);
        a.add_transition(
            p,
            SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]),
            p,
        )
        .unwrap();
        a
    }

    #[test]
    fn finite_run_validates() {
        let a = const_automaton();
        let db = Database::new(Schema::empty());
        let p = a.state_by_name("p").unwrap();
        let t = TransId(0);
        let mut run = FiniteRun::start(Config::new(p, vec![Value(1)]));
        run.push(t, Config::new(p, vec![Value(1)]));
        run.push(t, Config::new(p, vec![Value(1)]));
        assert!(run.validate(&a, &db).is_ok());
    }

    #[test]
    fn finite_run_detects_type_violation() {
        let a = const_automaton();
        let db = Database::new(Schema::empty());
        let p = a.state_by_name("p").unwrap();
        let mut run = FiniteRun::start(Config::new(p, vec![Value(1)]));
        run.push(TransId(0), Config::new(p, vec![Value(2)]));
        assert!(run.validate(&a, &db).is_err());
    }

    #[test]
    fn lasso_run_validates_and_traces() {
        let a = const_automaton();
        let db = Database::new(Schema::empty());
        let p = a.state_by_name("p").unwrap();
        let run = LassoRun::new(vec![Config::new(p, vec![Value(5)])], vec![TransId(0)], 0);
        assert!(run.validate(&a, &db).is_ok());
        let rt = run.register_trace();
        assert_eq!(rt.at(0), &vec![Value(5)]);
        assert_eq!(rt.at(100), &vec![Value(5)]);
    }

    #[test]
    fn lasso_run_buchi_condition() {
        // Make the only accepting state unreachable in the loop.
        let mut a = RegisterAutomaton::new(0, Schema::empty());
        let p = a.add_state("p");
        let q = a.add_state("q");
        a.set_initial(p);
        a.set_accepting(p); // accepting state is p, loop stays in q
        a.add_transition(p, SigmaType::empty(0), q).unwrap();
        a.add_transition(q, SigmaType::empty(0), q).unwrap();
        let run = LassoRun::new(
            vec![Config::new(p, vec![]), Config::new(q, vec![])],
            vec![TransId(0), TransId(1)],
            1,
        );
        let db = Database::new(Schema::empty());
        assert!(matches!(
            run.validate(&a, &db),
            Err(CoreError::InvalidRun(msg)) if msg.contains("Büchi")
        ));
    }

    #[test]
    fn lasso_wrap_around_checked() {
        // x1 = y1 forever, but loop wrap changes the value: invalid.
        let a = const_automaton();
        let db = Database::new(Schema::empty());
        let p = a.state_by_name("p").unwrap();
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(p, vec![Value(1)]),
            ],
            vec![TransId(0), TransId(0)],
            0,
        );
        assert!(run.validate(&a, &db).is_ok());
        let bad = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(p, vec![Value(2)]),
            ],
            vec![TransId(0), TransId(0)],
            0,
        );
        assert!(bad.validate(&a, &db).is_err());
    }

    #[test]
    fn config_and_trans_indexing() {
        let p = StateId(0);
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(0)]),
                Config::new(p, vec![Value(1)]),
                Config::new(p, vec![Value(2)]),
            ],
            vec![TransId(0), TransId(1), TransId(2)],
            1,
        );
        // positions: 0 1 2 1 2 1 2 ...
        assert_eq!(run.config_at(0).regs[0], Value(0));
        assert_eq!(run.config_at(1).regs[0], Value(1));
        assert_eq!(run.config_at(2).regs[0], Value(2));
        assert_eq!(run.config_at(3).regs[0], Value(1));
        assert_eq!(run.config_at(4).regs[0], Value(2));
        assert_eq!(run.trans_at(3), TransId(1));
    }

    #[test]
    fn unroll_prefix() {
        let p = StateId(0);
        let run = LassoRun::new(vec![Config::new(p, vec![Value(7)])], vec![TransId(0)], 0);
        let fr = run.unroll(4);
        assert_eq!(fr.configs.len(), 4);
        assert_eq!(fr.trans.len(), 3);
    }

    #[test]
    fn projected_trace() {
        let p = StateId(0);
        let run = LassoRun::new(
            vec![Config::new(p, vec![Value(1), Value(2)])],
            vec![TransId(0)],
            0,
        );
        let proj = run.projected_register_trace(1);
        assert_eq!(proj.at(0), &vec![Value(1)]);
    }
}
