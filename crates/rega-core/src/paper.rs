//! Executable versions of the paper's running examples.
//!
//! Each function builds exactly the automaton described in the corresponding
//! example of *Projection Views of Register Automata*; they are used by the
//! test and experiment suites (E1, E5, E8, E10) and by the runnable examples.

use crate::automaton::{RegisterAutomaton, TransId};
use crate::extended::{ConstraintKind, ExtendedAutomaton};
use rega_data::{Literal, RegIdx, Schema, SigmaType, Term};

/// **Example 1.** The 2-register automaton `A` with states `q1, q2`
/// (initial and accepting `q1`), no database, and transitions
/// `(q1, δ1, q2), (q2, δ2, q2), (q2, δ3, q1)` where
/// `δ1 = (x1=x2 ∧ x2=y2)`, `δ2 = (x2=y2)`, `δ3 = (x2=y2 ∧ y1=y2)`.
///
/// Register 2 carries the initial value `d` forever; register 1 equals `d`
/// exactly at the `q1`-positions.
pub fn example1() -> (RegisterAutomaton, Vec<TransId>) {
    let mut a = RegisterAutomaton::new(2, Schema::empty());
    let q1 = a.add_state("q1");
    let q2 = a.add_state("q2");
    a.set_initial(q1);
    a.set_accepting(q1);
    let d1 = SigmaType::new(
        2,
        [
            Literal::eq(Term::x(0), Term::x(1)),
            Literal::eq(Term::x(1), Term::y(1)),
        ],
    );
    let d2 = SigmaType::new(2, [Literal::eq(Term::x(1), Term::y(1))]);
    let d3 = SigmaType::new(
        2,
        [
            Literal::eq(Term::x(1), Term::y(1)),
            Literal::eq(Term::y(0), Term::y(1)),
        ],
    );
    let t1 = a.add_transition(q1, d1, q2).expect("valid");
    let t2 = a.add_transition(q2, d2, q2).expect("valid");
    let t3 = a.add_transition(q2, d3, q1).expect("valid");
    (a, vec![t1, t2, t3])
}

/// **Example 5.** The extended automaton `B = (B, Σ)` describing the
/// projection of Example 1's runs on the first register: one register,
/// states `p1` (initial, accepting) and `p2`, trivial transition types, and
/// the global equality constraint `e=₁₁ = p1 p2* p1` forcing a single data
/// value `d` at every `p1`-position.
///
/// (The paper lists only transitions `(p1,γ,p2), (p2,γ,p2)`; a `p2 → p1`
/// transition is required for `p1` to recur, as its Büchi condition and the
/// intended traces `(q1 q2⁺)^ω` demand, so we include it.)
pub fn example5() -> ExtendedAutomaton {
    let mut b = RegisterAutomaton::new(1, Schema::empty());
    let p1 = b.add_state("p1");
    let p2 = b.add_state("p2");
    b.set_initial(p1);
    b.set_accepting(p1);
    let gamma = SigmaType::empty(1);
    b.add_transition(p1, gamma.clone(), p2).expect("valid");
    b.add_transition(p2, gamma.clone(), p2).expect("valid");
    b.add_transition(p2, gamma, p1).expect("valid");
    let mut ext = ExtendedAutomaton::new(b);
    ext.add_constraint_str(ConstraintKind::Equal, RegIdx(0), RegIdx(0), "p1 p2* p1")
        .expect("valid constraint");
    ext
}

/// **Example 7.** The extended automaton with one register, one state, a
/// trivial looping transition, and a global inequality constraint making
/// *all* register values of a run pairwise distinct (factors of length ≥ 2:
/// `e≠₁₁ = q q q*`).
///
/// The paper shows no register automaton — with any number of registers —
/// has the same register traces (see Example 17).
pub fn example7() -> ExtendedAutomaton {
    let mut a = RegisterAutomaton::new(1, Schema::empty());
    let q = a.add_state("q");
    a.set_initial(q);
    a.set_accepting(q);
    a.add_transition(q, SigmaType::empty(1), q).expect("valid");
    let mut ext = ExtendedAutomaton::new(a);
    ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "q q q*")
        .expect("valid constraint");
    ext
}

/// **Example 8.** An extended automaton whose state traces are *not*
/// ω-regular: one register, states `p, q`, a unary database relation `P`
/// with every transition requiring `P(x1)`, and a constraint making the
/// register values within any `q`-free block of `p`s pairwise distinct
/// (`e≠₁₁ = p p p*`).
///
/// On a database with `|P| = N`, no run can stay in `p` for more than `N`
/// consecutive positions — a non-ω-regular bound on the state traces.
pub fn example8() -> ExtendedAutomaton {
    let schema = Schema::with(&[("P", 1)], &[]);
    let p_rel = schema.relation("P").expect("declared");
    let mut a = RegisterAutomaton::new(1, schema);
    let p = a.add_state("p");
    let q = a.add_state("q");
    a.set_initial(p);
    a.set_accepting(p);
    a.set_accepting(q);
    let ty = SigmaType::new(1, [Literal::rel(p_rel, vec![Term::x(0)])]);
    for from in [p, q] {
        for to in [p, q] {
            a.add_transition(from, ty.clone(), to).expect("valid");
        }
    }
    let mut ext = ExtendedAutomaton::new(a);
    ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "p p p*")
        .expect("valid constraint");
    ext
}

/// **Example 16**, automaton `𝒜`: one register, one state, and the local
/// type `x1 ≠ y1` (the value changes at every step); no global constraints.
/// This automaton is LR-bounded.
pub fn example16_a() -> ExtendedAutomaton {
    let mut a = RegisterAutomaton::new(1, Schema::empty());
    let q = a.add_state("q");
    a.set_initial(q);
    a.set_accepting(q);
    a.add_transition(
        q,
        SigmaType::new(1, [Literal::neq(Term::x(0), Term::y(0))]),
        q,
    )
    .expect("valid");
    ExtendedAutomaton::new(a)
}

/// **Example 16**, automaton `𝒜′`: states `p, q` (both initial and
/// accepting), self-loops with `x1 ≠ y1`, plus the global constraint
/// `e≠₁₁ = p p p*` making runs that start in `p` pairwise distinct.
/// `𝒜′` is register-trace equivalent to [`example16_a`] but *not*
/// LR-bounded — LR-boundedness is syntactic, not semantic.
pub fn example16_a_prime() -> ExtendedAutomaton {
    let mut a = RegisterAutomaton::new(1, Schema::empty());
    let q = a.add_state("q");
    let p = a.add_state("p");
    a.set_initial(q);
    a.set_initial(p);
    a.set_accepting(q);
    a.set_accepting(p);
    let ty = SigmaType::new(1, [Literal::neq(Term::x(0), Term::y(0))]);
    a.add_transition(q, ty.clone(), q).expect("valid");
    a.add_transition(p, ty, p).expect("valid");
    let mut ext = ExtendedAutomaton::new(a);
    ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "p p p*")
        .expect("valid constraint");
    ext
}

/// **Example 23.** The register automaton with a database that no extended
/// automaton can project: 2 registers, states `p` (initial, accepting) and
/// `q`, a binary edge relation `E` and unary `U`. Register 2 never changes
/// and register 1 stays in `U`; the `p → q` transition requires
/// `E(x2, x1)`, the `q → p` transition requires `¬E(x2, x1)`.
///
/// Projected on register 1, the runs are the sequences of `U`-nodes for
/// which some node points (via `E`) to exactly the values at even positions.
pub fn example23() -> RegisterAutomaton {
    let schema = Schema::with(&[("E", 2), ("U", 1)], &[]);
    let e = schema.relation("E").expect("declared");
    let u = schema.relation("U").expect("declared");
    let mut a = RegisterAutomaton::new(2, schema);
    let p = a.add_state("p");
    let q = a.add_state("q");
    a.set_initial(p);
    a.set_accepting(p);
    let base = [
        Literal::eq(Term::x(1), Term::y(1)),
        Literal::rel(u, vec![Term::x(0)]),
    ];
    let mut delta = SigmaType::new(2, base.clone());
    delta.add(Literal::rel(e, vec![Term::x(1), Term::x(0)]));
    let mut delta_prime = SigmaType::new(2, base);
    delta_prime.add(Literal::not_rel(e, vec![Term::x(1), Term::x(0)]));
    a.add_transition(p, delta, q).expect("valid");
    a.add_transition(q, delta_prime, p).expect("valid");
    a
}

/// **Section 6's ternary variant of Example 23**: `E` is ternary and the
/// transitions relate *consecutive* visible values to the hidden constant:
/// `δ` contains `E(x1, x2, y1)` and `δ′` contains `¬E(x1, x2, y1)`. A
/// single visible value may now repeat across parities, but the *pair* of
/// consecutive visible values at an even position must never equal the
/// pair at an odd position — the situation motivating tuple inequality
/// constraints of arity 2.
pub fn example23_ternary() -> RegisterAutomaton {
    let schema = Schema::with(&[("E", 3), ("U", 1)], &[]);
    let e = schema.relation("E").expect("declared");
    let u = schema.relation("U").expect("declared");
    let mut a = RegisterAutomaton::new(2, schema);
    let p = a.add_state("p");
    let q = a.add_state("q");
    a.set_initial(p);
    a.set_accepting(p);
    let base = [
        Literal::eq(Term::x(1), Term::y(1)),
        Literal::rel(u, vec![Term::x(0)]),
    ];
    let mut delta = SigmaType::new(2, base.clone());
    delta.add(Literal::rel(e, vec![Term::x(0), Term::x(1), Term::y(0)]));
    let mut delta_prime = SigmaType::new(2, base);
    delta_prime.add(Literal::not_rel(
        e,
        vec![Term::x(0), Term::x(1), Term::y(0)],
    ));
    a.add_transition(p, delta, q).expect("valid");
    a.add_transition(q, delta_prime, p).expect("valid");
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{Config, LassoRun};
    use rega_data::{Database, Value};

    #[test]
    fn example1_shape() {
        let (a, ts) = example1();
        assert_eq!(a.k(), 2);
        assert_eq!(a.num_states(), 2);
        assert_eq!(ts.len(), 3);
        assert!(!a.is_state_driven()); // q2 has two distinct outgoing types
        assert!(!a.is_complete().unwrap());
    }

    #[test]
    fn example1_typical_run_validates() {
        // (d1 d1, q1, δ1)(d2 d1, q2, δ2)(d3 d1, q2, δ2)(d4 d1, q2, δ3) loop
        // back to (d1 d1, q1, δ1).
        let (a, ts) = example1();
        let q1 = a.state_by_name("q1").unwrap();
        let q2 = a.state_by_name("q2").unwrap();
        let d = |v: u64| Value(v);
        let run = LassoRun::new(
            vec![
                Config::new(q1, vec![d(1), d(1)]),
                Config::new(q2, vec![d(2), d(1)]),
                Config::new(q2, vec![d(3), d(1)]),
                Config::new(q2, vec![d(4), d(1)]),
            ],
            vec![ts[0], ts[1], ts[1], ts[2]],
            0,
        );
        let db = Database::new(Schema::empty());
        assert!(run.validate(&a, &db).is_ok());
    }

    #[test]
    fn example1_register2_must_be_constant() {
        let (a, ts) = example1();
        let q1 = a.state_by_name("q1").unwrap();
        let q2 = a.state_by_name("q2").unwrap();
        let run = LassoRun::new(
            vec![
                Config::new(q1, vec![Value(1), Value(1)]),
                Config::new(q2, vec![Value(2), Value(9)]), // register 2 changed
            ],
            vec![ts[0], ts[2]],
            0,
        );
        let db = Database::new(Schema::empty());
        assert!(run.validate(&a, &db).is_err());
    }

    #[test]
    fn example8_constraint_bounds_p_blocks() {
        let ext = example8();
        let schema = ext.ra().schema().clone();
        let prel = schema.relation("P").unwrap();
        let mut db = Database::new(schema);
        db.insert(prel, vec![Value(1)]).unwrap();
        db.insert(prel, vec![Value(2)]).unwrap();
        let p = ext.ra().state_by_name("p").unwrap();
        let t_pp = ext
            .ra()
            .outgoing(p)
            .iter()
            .copied()
            .find(|&t| ext.ra().transition(t).to == p)
            .unwrap();
        // p p p with values 1,2,1: positions 0 and 2 must differ but hold 1.
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(p, vec![Value(2)]),
                Config::new(p, vec![Value(1)]),
            ],
            vec![t_pp, t_pp, t_pp],
            0,
        );
        assert!(ext.check_lasso_run(&db, &run).is_err());
    }

    #[test]
    fn example8_alternation_through_q_is_fine() {
        let ext = example8();
        let schema = ext.ra().schema().clone();
        let prel = schema.relation("P").unwrap();
        let mut db = Database::new(schema);
        db.insert(prel, vec![Value(1)]).unwrap();
        db.insert(prel, vec![Value(2)]).unwrap();
        let p = ext.ra().state_by_name("p").unwrap();
        let q = ext.ra().state_by_name("q").unwrap();
        let find = |from, to| {
            ext.ra()
                .outgoing(from)
                .iter()
                .copied()
                .find(|&t| ext.ra().transition(t).to == to)
                .unwrap()
        };
        // p(1) q(1) p(1) q(1) ... same value forever, q breaks the blocks.
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(q, vec![Value(1)]),
            ],
            vec![find(p, q), find(q, p)],
            0,
        );
        assert!(ext.check_lasso_run(&db, &run).is_ok());
    }

    #[test]
    fn example23_runs_alternate_edge_membership() {
        let a = example23();
        let schema = a.schema().clone();
        let e = schema.relation("E").unwrap();
        let u = schema.relation("U").unwrap();
        let mut db = Database::new(schema);
        let (c, d0, d1) = (Value(100), Value(0), Value(1));
        db.insert(e, vec![c, d0]).unwrap();
        db.insert(u, vec![d0]).unwrap();
        db.insert(u, vec![d1]).unwrap();
        let p = a.state_by_name("p").unwrap();
        let q = a.state_by_name("q").unwrap();
        let t_pq = a.outgoing(p)[0];
        let t_qp = a.outgoing(q)[0];
        // d0 at even positions (E(c, d0) holds), d1 at odd (¬E(c, d1)).
        let run = LassoRun::new(
            vec![Config::new(p, vec![d0, c]), Config::new(q, vec![d1, c])],
            vec![t_pq, t_qp],
            0,
        );
        assert!(run.validate(&a, &db).is_ok());
        // Swapping the values breaks both relational literals.
        let bad = LassoRun::new(
            vec![Config::new(p, vec![d1, c]), Config::new(q, vec![d0, c])],
            vec![t_pq, t_qp],
            0,
        );
        assert!(bad.validate(&a, &db).is_err());
    }

    #[test]
    fn example16_automata_shapes() {
        let a = example16_a();
        assert!(a.constraints().is_empty());
        let ap = example16_a_prime();
        assert_eq!(ap.constraints().len(), 1);
        assert_eq!(ap.ra().num_states(), 2);
    }
}
