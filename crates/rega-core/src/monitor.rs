//! Incremental monitors for the global constraints of extended automata.
//!
//! The streaming interpretation of a constraint `eᵢⱼ`: at every position `n`
//! a monitor run starts in the constraint DFA (capturing the candidate
//! factor start `n`, with the value `d_n[i]`); every active run advances on
//! each state letter; whenever a run is in an accepting DFA state at
//! position `m` the factor `q_n … q_m` matches, and the stored value is
//! compared against `d_m[j]`.
//!
//! Runs in the same DFA state are merged into a value *set* — for `≠`
//! constraints all stored values must differ from the target, for `=`
//! constraints all must equal it — which keeps the configuration finite
//! whenever the run uses finitely many values (the key to exact checking of
//! lasso runs).

use crate::automaton::StateId;
use crate::extended::{ConstraintKind, ExtendedAutomaton};
use rega_data::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A reported constraint violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated constraint in the automaton's constraint list.
    pub constraint: usize,
    /// Source register of the constraint.
    pub i: u16,
    /// Target register of the constraint.
    pub j: u16,
}

/// The monitor state for all constraints of an extended automaton.
#[derive(Clone, Debug)]
pub struct ConstraintMonitor<'a> {
    ext: &'a ExtendedAutomaton,
    /// Per constraint: DFA state → set of stored source values.
    active: Vec<BTreeMap<usize, BTreeSet<Value>>>,
}

impl<'a> ConstraintMonitor<'a> {
    /// A fresh monitor (no positions consumed yet).
    pub fn new(ext: &'a ExtendedAutomaton) -> Self {
        ConstraintMonitor {
            active: vec![BTreeMap::new(); ext.constraints().len()],
            ext,
        }
    }

    /// Consumes one position of the run (its state and register values).
    /// Returns a violation if some constraint fires and fails.
    pub fn step(&mut self, state: StateId, regs: &[Value]) -> Option<Violation> {
        for (cid, constraint) in self.ext.constraints().iter().enumerate() {
            let dfa = constraint.dfa();
            let map = &mut self.active[cid];
            // Advance existing runs.
            let mut next: BTreeMap<usize, BTreeSet<Value>> = BTreeMap::new();
            for (s, vals) in map.iter() {
                let t = dfa.step(*s, &state);
                if constraint.is_alive(t) {
                    next.entry(t).or_default().extend(vals.iter().copied());
                }
            }
            // Spawn the run whose factor starts here.
            let s0 = dfa.step(dfa.init(), &state);
            if constraint.is_alive(s0) {
                next.entry(s0)
                    .or_default()
                    .insert(regs[constraint.i.idx()]);
            }
            // Fire matches.
            let target = regs[constraint.j.idx()];
            for (s, vals) in next.iter() {
                if !dfa.is_accepting(*s) {
                    continue;
                }
                let violated = match constraint.kind {
                    ConstraintKind::Equal => vals.iter().any(|&v| v != target),
                    ConstraintKind::NotEqual => vals.contains(&target),
                };
                if violated {
                    return Some(Violation {
                        constraint: cid,
                        i: constraint.i.0,
                        j: constraint.j.0,
                    });
                }
            }
            *map = next;
        }
        None
    }

    /// A canonical byte fingerprint of the configuration, used to detect
    /// repetition when checking lasso runs.
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for map in &self.active {
            out.extend_from_slice(&(map.len() as u64).to_le_bytes());
            for (s, vals) in map {
                out.extend_from_slice(&(*s as u64).to_le_bytes());
                out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
                for v in vals {
                    out.extend_from_slice(&v.raw().to_le_bytes());
                }
            }
        }
        out
    }

    /// Total number of active (state, value) pairs — used by the streaming
    /// ablation experiment E12.
    pub fn active_size(&self) -> usize {
        self.active
            .iter()
            .map(|m| m.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::RegisterAutomaton;
    use rega_data::{RegIdx, Schema, SigmaType};

    /// Single-state automaton with an equality constraint matching factors
    /// of length exactly 3 (value must return after two steps).
    fn every_other_equal() -> ExtendedAutomaton {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        ext.add_constraint_str(ConstraintKind::Equal, RegIdx(0), RegIdx(0), "q q q")
            .unwrap();
        ext
    }

    #[test]
    fn equality_constraint_fires_at_distance_two() {
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        assert!(m.step(q, &[Value(1)]).is_none());
        assert!(m.step(q, &[Value(2)]).is_none());
        // position 2 must equal position 0
        assert!(m.step(q, &[Value(1)]).is_none());
        // position 3 must equal position 1: violate it
        assert_eq!(
            m.step(q, &[Value(9)]),
            Some(Violation {
                constraint: 0,
                i: 0,
                j: 0
            })
        );
    }

    #[test]
    fn inequality_constraint() {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        // consecutive values must differ
        ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "q q")
            .unwrap();
        let mut m = ConstraintMonitor::new(&ext);
        assert!(m.step(StateId(0), &[Value(1)]).is_none());
        assert!(m.step(StateId(0), &[Value(2)]).is_none());
        assert!(m.step(StateId(0), &[Value(2)]).is_some());
    }

    #[test]
    fn fingerprint_detects_periodicity() {
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        let mut prints = Vec::new();
        for step in 0..8 {
            m.step(q, &[Value(step % 2)]);
            prints.push(m.fingerprint());
        }
        // After warm-up the configuration is 2-periodic.
        assert_eq!(prints[4], prints[6]);
        assert_eq!(prints[5], prints[7]);
    }

    #[test]
    fn dead_runs_are_pruned() {
        // Constraint only matches factors "q p": runs die in state p-less
        // automaton paths.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        let p = ra.add_state("p");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        ra.add_transition(q, SigmaType::empty(1), p).unwrap();
        ra.add_transition(p, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "q p")
            .unwrap();
        let mut m = ConstraintMonitor::new(&ext);
        // staying in q forever: all spawned runs die immediately after "q q"
        for v in 0..5 {
            assert!(m.step(StateId(0), &[Value(v)]).is_none());
        }
        assert!(m.active_size() <= 1); // only the freshly spawned run lives
    }
}
