//! Incremental monitors for the global constraints of extended automata.
//!
//! The streaming interpretation of a constraint `eᵢⱼ`: at every position `n`
//! a monitor run starts in the constraint DFA (capturing the candidate
//! factor start `n`, with the value `d_n[i]`); every active run advances on
//! each state letter; whenever a run is in an accepting DFA state at
//! position `m` the factor `q_n … q_m` matches, and the stored value is
//! compared against `d_m[j]`.
//!
//! Runs in the same DFA state are merged into a value *set* — for `≠`
//! constraints all stored values must differ from the target, for `=`
//! constraints all must equal it — which keeps the configuration finite
//! whenever the run uses finitely many values (the key to exact checking of
//! lasso runs).
//!
//! The monitor owns its state and borrows the automaton only per
//! [`step`](ConstraintMonitor::step) call, so external drivers (the
//! `rega-stream` engine) can keep thousands of session monitors hot against
//! one shared compiled spec. Value sets live in dense per-DFA-state slots
//! and are *moved* to their successor slot when it is empty (the common,
//! single-predecessor case); the slot buffers are double-buffered and
//! reused across steps, so a step allocates only when two runs genuinely
//! merge or a fresh run spawns into an empty slot.

use crate::automaton::StateId;
use crate::extended::{ConstraintKind, ExtendedAutomaton};
use rega_data::Value;
use std::collections::BTreeSet;

/// A reported constraint violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated constraint in the automaton's constraint list.
    pub constraint: usize,
    /// Source register of the constraint.
    pub i: u16,
    /// Target register of the constraint.
    pub j: u16,
}

/// Dense per-constraint monitor configuration: slot `s` holds the stored
/// source values of all active runs currently in DFA state `s`.
type Slots = Vec<Option<BTreeSet<Value>>>;

/// Plain-data form of a monitor's live configuration, as produced by
/// [`ConstraintMonitor::export_slots`]: per constraint, the sparse list of
/// `(dfa_state, stored_values)` slots.
pub type ExportedSlots = Vec<Vec<(usize, Vec<Value>)>>;

/// The monitor state for all constraints of an extended automaton.
///
/// The monitor is a pure state machine: it stores no reference to the
/// automaton, which must be passed (unchanged between calls) to
/// [`step`](Self::step). Stepping with a *different* automaton than the one
/// given to [`new`](Self::new) is a logic error and may panic on
/// out-of-range states.
#[derive(Clone, Debug)]
pub struct ConstraintMonitor {
    /// Per constraint: DFA state → set of stored source values.
    active: Vec<Slots>,
    /// Per constraint: spare buffer swapped with `active` on each step
    /// (kept all-`None` between steps).
    spare: Vec<Slots>,
}

impl ConstraintMonitor {
    /// A fresh monitor (no positions consumed yet) for the constraints of
    /// `ext`.
    pub fn new(ext: &ExtendedAutomaton) -> Self {
        let sizes: Vec<usize> = ext
            .constraints()
            .iter()
            .map(|c| c.dfa().num_states())
            .collect();
        ConstraintMonitor {
            active: sizes.iter().map(|&n| vec![None; n]).collect(),
            spare: sizes.iter().map(|&n| vec![None; n]).collect(),
        }
    }

    /// Consumes one position of the run (its state and register values).
    /// Returns a violation if some constraint fires and fails.
    ///
    /// `ext` must be the automaton this monitor was created for.
    pub fn step(
        &mut self,
        ext: &ExtendedAutomaton,
        state: StateId,
        regs: &[Value],
    ) -> Option<Violation> {
        for (cid, constraint) in ext.constraints().iter().enumerate() {
            let dfa = constraint.dfa();
            let letter = dfa
                .letter_index(&state)
                .expect("monitor stepped with a state outside the constraint alphabet");
            let cur = &mut self.active[cid];
            let next = &mut self.spare[cid];
            // Advance existing runs, moving each value set into its
            // successor slot (merging only when two runs collide).
            for (s, src) in cur.iter_mut().enumerate() {
                if let Some(vals) = src.take() {
                    let t = dfa.step_idx(s, letter);
                    if constraint.is_alive(t) {
                        match &mut next[t] {
                            slot @ None => *slot = Some(vals),
                            Some(dst) => dst.extend(vals),
                        }
                    }
                }
            }
            // Spawn the run whose factor starts here.
            let s0 = dfa.step_idx(dfa.init(), letter);
            if constraint.is_alive(s0) {
                next[s0]
                    .get_or_insert_with(BTreeSet::new)
                    .insert(regs[constraint.i.idx()]);
            }
            // `cur` is now all-`None`; it becomes the next step's spare.
            std::mem::swap(cur, next);
            // Fire matches.
            let target = regs[constraint.j.idx()];
            for (s, slot) in self.active[cid].iter().enumerate() {
                let Some(vals) = slot else { continue };
                if !dfa.is_accepting(s) {
                    continue;
                }
                let violated = match constraint.kind {
                    ConstraintKind::Equal => vals.iter().any(|&v| v != target),
                    ConstraintKind::NotEqual => vals.contains(&target),
                };
                if violated {
                    return Some(Violation {
                        constraint: cid,
                        i: constraint.i.0,
                        j: constraint.j.0,
                    });
                }
            }
        }
        None
    }

    /// A canonical byte fingerprint of the configuration, used to detect
    /// repetition when checking lasso runs and to deduplicate observer
    /// frontiers.
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.fingerprint_into(&mut out);
        out
    }

    /// Appends the canonical fingerprint to `out` (allocation-reusing
    /// variant for hot callers).
    pub fn fingerprint_into(&self, out: &mut Vec<u8>) {
        for slots in &self.active {
            let live = slots.iter().filter(|s| s.is_some()).count();
            out.extend_from_slice(&(live as u64).to_le_bytes());
            for (s, slot) in slots.iter().enumerate() {
                let Some(vals) = slot else { continue };
                out.extend_from_slice(&(s as u64).to_le_bytes());
                out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
                for v in vals {
                    out.extend_from_slice(&v.raw().to_le_bytes());
                }
            }
        }
    }

    /// Exports the live configuration as plain data: per constraint, the
    /// sparse list of `(dfa_state, stored_values)` slots. Together with
    /// [`from_slots`](Self::from_slots) this gives monitor snapshot /
    /// restore without committing this crate to a serialization format —
    /// callers (the `rega-stream` engine) encode the nested vectors in
    /// whatever wire format they use.
    pub fn export_slots(&self) -> ExportedSlots {
        self.active
            .iter()
            .map(|slots| {
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(s, slot)| {
                        slot.as_ref()
                            .map(|vals| (s, vals.iter().copied().collect()))
                    })
                    .collect()
            })
            .collect()
    }

    /// Rebuilds a monitor from [`export_slots`](Self::export_slots) data.
    /// Returns `None` when the data does not fit `ext` (wrong constraint
    /// count or an out-of-range DFA state), so corrupted snapshots are
    /// rejected instead of panicking later.
    pub fn from_slots(
        ext: &ExtendedAutomaton,
        exported: &[Vec<(usize, Vec<Value>)>],
    ) -> Option<Self> {
        let mut monitor = Self::new(ext);
        if exported.len() != monitor.active.len() {
            return None;
        }
        for (cid, constraint_slots) in exported.iter().enumerate() {
            let size = monitor.active[cid].len();
            for (s, vals) in constraint_slots {
                if *s >= size {
                    return None;
                }
                monitor.active[cid][*s] = Some(vals.iter().copied().collect());
            }
        }
        Some(monitor)
    }

    /// Total number of active (state, value) pairs — used by the streaming
    /// ablation experiment E12 and the engine's memory accounting.
    pub fn active_size(&self) -> usize {
        self.active
            .iter()
            .flatten()
            .map(|slot| slot.as_ref().map_or(0, BTreeSet::len))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::RegisterAutomaton;
    use rega_data::{RegIdx, Schema, SigmaType};

    /// Single-state automaton with an equality constraint matching factors
    /// of length exactly 3 (value must return after two steps).
    fn every_other_equal() -> ExtendedAutomaton {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        ext.add_constraint_str(ConstraintKind::Equal, RegIdx(0), RegIdx(0), "q q q")
            .unwrap();
        ext
    }

    #[test]
    fn equality_constraint_fires_at_distance_two() {
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        assert!(m.step(&ext, q, &[Value(1)]).is_none());
        assert!(m.step(&ext, q, &[Value(2)]).is_none());
        // position 2 must equal position 0
        assert!(m.step(&ext, q, &[Value(1)]).is_none());
        // position 3 must equal position 1: violate it
        assert_eq!(
            m.step(&ext, q, &[Value(9)]),
            Some(Violation {
                constraint: 0,
                i: 0,
                j: 0
            })
        );
    }

    #[test]
    fn inequality_constraint() {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        // consecutive values must differ
        ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "q q")
            .unwrap();
        let mut m = ConstraintMonitor::new(&ext);
        assert!(m.step(&ext, StateId(0), &[Value(1)]).is_none());
        assert!(m.step(&ext, StateId(0), &[Value(2)]).is_none());
        assert!(m.step(&ext, StateId(0), &[Value(2)]).is_some());
    }

    #[test]
    fn fingerprint_detects_periodicity() {
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        let mut prints = Vec::new();
        for step in 0..8 {
            m.step(&ext, q, &[Value(step % 2)]);
            prints.push(m.fingerprint());
        }
        // After warm-up the configuration is 2-periodic.
        assert_eq!(prints[4], prints[6]);
        assert_eq!(prints[5], prints[7]);
    }

    #[test]
    fn dead_runs_are_pruned() {
        // Constraint only matches factors "q p": runs die in state p-less
        // automaton paths.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let q = ra.add_state("q");
        let p = ra.add_state("p");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        ra.add_transition(q, SigmaType::empty(1), p).unwrap();
        ra.add_transition(p, SigmaType::empty(1), q).unwrap();
        let mut ext = ExtendedAutomaton::new(ra);
        ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "q p")
            .unwrap();
        let mut m = ConstraintMonitor::new(&ext);
        // staying in q forever: all spawned runs die immediately after "q q"
        for v in 0..5 {
            assert!(m.step(&ext, StateId(0), &[Value(v)]).is_none());
        }
        assert!(m.active_size() <= 1); // only the freshly spawned run lives
    }

    #[test]
    fn export_import_round_trips_mid_run() {
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        for v in 0..5 {
            assert!(m.step(&ext, q, &[Value(v)]).is_none() || v >= 2);
            let restored = ConstraintMonitor::from_slots(&ext, &m.export_slots())
                .expect("own export must round-trip");
            assert_eq!(m.fingerprint(), restored.fingerprint());
        }
        // The restored monitor behaves identically from here on.
        let mut restored =
            ConstraintMonitor::from_slots(&ext, &m.export_slots()).expect("round-trip");
        for v in [7u64, 7, 9, 2] {
            assert_eq!(
                m.step(&ext, q, &[Value(v)]),
                restored.step(&ext, q, &[Value(v)]),
                "restored monitor diverged"
            );
        }
        // Corrupt shapes are rejected, not panicked on.
        assert!(ConstraintMonitor::from_slots(&ext, &[]).is_none());
        assert!(
            ConstraintMonitor::from_slots(&ext, &[vec![(usize::MAX, vec![Value(1)])]]).is_none()
        );
    }

    #[test]
    fn spare_buffers_stay_clear_and_sets_move() {
        // Long single-predecessor chains must not grow the configuration:
        // the `q q q` equality constraint carries at most two live sets.
        let ext = every_other_equal();
        let q = StateId(0);
        let mut m = ConstraintMonitor::new(&ext);
        for v in 0..64 {
            assert!(m.step(&ext, q, &[Value(v % 2)]).is_none());
            assert!(m.spare.iter().flatten().all(Option::is_none));
            assert!(m.active_size() <= 4, "configuration must stay bounded");
        }
    }
}
