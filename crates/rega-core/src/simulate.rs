//! Run search and simulation over concrete databases.
//!
//! The simulator enumerates or samples valid run prefixes and lasso runs of
//! an extended automaton over a given database. Successor register tuples
//! are derived symbolically from the transition type (forced values from the
//! equalities, free values drawn from a finite candidate pool), then checked
//! exactly. Global constraints are enforced incrementally by the
//! [`ConstraintMonitor`].
//!
//! The candidate pool makes the search finite: completeness is relative to
//! the pool (a pool containing the active domain, the current registers and
//! `k+1` fresh values per step is sufficient for equality/inequality types
//! because types only compare values and query the database).

use crate::automaton::TransId;
use crate::error::CoreError;
use crate::extended::ExtendedAutomaton;
use crate::monitor::ConstraintMonitor;
use crate::run::{Config, FiniteRun, LassoRun};
use rega_data::{Database, SatCache, Term, Value, ValueSupply};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Budget limits for the search.
#[derive(Clone, Copy, Debug)]
pub struct SearchLimits {
    /// Maximum number of search nodes to expand.
    pub max_nodes: usize,
    /// Maximum number of runs to return from enumeration.
    pub max_runs: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 100_000,
            max_runs: 1_000,
        }
    }
}

/// The candidate value pool used for free (unconstrained) registers:
/// the database's active domain plus `fresh` values beyond everything used.
pub fn default_pool(db: &Database, fresh: usize) -> Vec<Value> {
    let mut pool: Vec<Value> = db.adom().into_iter().collect();
    let mut supply = ValueSupply::avoiding(pool.iter().copied());
    pool.extend(supply.fresh_n(fresh));
    pool
}

/// Computes the successor configurations of `cur` over all outgoing
/// transitions, with free registers drawn from `pool ∪ cur.regs`.
pub fn successors(
    ext: &ExtendedAutomaton,
    db: &Database,
    cur: &Config,
    pool: &[Value],
) -> Vec<(TransId, Config)> {
    successors_impl(ext, db, cur, pool, &mut |ty| {
        ty.analyze(ext.ra().schema()).ok().map(Arc::new)
    })
}

/// [`successors`] with the per-transition type analyses memoized in
/// `cache`. The search loops below call this with one cache per top-level
/// search, so each transition type is analyzed once per search instead of
/// once per expanded node.
pub fn successors_cached(
    ext: &ExtendedAutomaton,
    db: &Database,
    cur: &Config,
    pool: &[Value],
    cache: &SatCache,
) -> Vec<(TransId, Config)> {
    successors_impl(ext, db, cur, pool, &mut |ty| cache.analyze(ty).ok())
}

fn successors_impl(
    ext: &ExtendedAutomaton,
    db: &Database,
    cur: &Config,
    pool: &[Value],
    analyze: &mut dyn FnMut(&rega_data::SigmaType) -> Option<Arc<rega_data::types::TypeAnalysis>>,
) -> Vec<(TransId, Config)> {
    let ra = ext.ra();
    let k = ra.k() as usize;
    let mut full_pool: Vec<Value> = pool.to_vec();
    for &v in &cur.regs {
        if !full_pool.contains(&v) {
            full_pool.push(v);
        }
    }
    let mut out = Vec::new();
    for &t in ra.outgoing(cur.state) {
        let tr = ra.transition(t);
        let Some(analysis) = analyze(&tr.ty) else {
            continue;
        };
        // Forced value per y-register: from an x-term or constant in the
        // same class. y-classes without such an anchor are free, but
        // y-registers in the same class must share the chosen value.
        let mut forced: Vec<Option<Value>> = vec![None; k];
        let mut free_classes: Vec<Vec<usize>> = Vec::new(); // y registers per class
        let mut class_seen: std::collections::HashMap<usize, usize> = Default::default();
        for (yi, forced_slot) in forced.iter_mut().enumerate() {
            let class = analysis.class_of(Term::y(yi as u16));
            let members = &analysis.classes()[class];
            let anchor = members.iter().find_map(|m| match m {
                Term::X(i) => Some(cur.regs[i.idx()]),
                Term::Const(c) => Some(db.constant(*c)),
                Term::Y(_) => None,
            });
            match anchor {
                Some(v) => *forced_slot = Some(v),
                None => {
                    let slot = *class_seen.entry(class).or_insert_with(|| {
                        free_classes.push(Vec::new());
                        free_classes.len() - 1
                    });
                    free_classes[slot].push(yi);
                }
            }
        }
        // Enumerate pool assignments for the free classes.
        let nfree = free_classes.len();
        let mut choice = vec![0usize; nfree];
        loop {
            let mut regs: Vec<Value> = (0..k)
                .map(|i| forced[i].unwrap_or(Value(u64::MAX)))
                .collect();
            for (slot, members) in free_classes.iter().enumerate() {
                for &yi in members {
                    regs[yi] = full_pool[choice[slot]];
                }
            }
            if tr.ty.satisfied_by(db, &cur.regs, &regs) {
                out.push((t, Config::new(tr.to, regs)));
            }
            // Next assignment.
            let mut i = 0;
            loop {
                if i == nfree {
                    break;
                }
                choice[i] += 1;
                if choice[i] < full_pool.len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == nfree {
                break;
            }
        }
    }
    // Deduplicate (different transitions may coincide only if same id, so
    // dedupe by (t, config)).
    out.sort_by(|a, b| (a.0, &a.1.state, &a.1.regs).cmp(&(b.0, &b.1.state, &b.1.regs)));
    out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    out
}

/// The initial configurations: every initial state crossed with register
/// tuples over the pool. To keep this finite and useful, all-distinct and
/// all-equal tuples plus every constant tuple from the pool are enumerated
/// (full pool^k enumeration for small k).
pub fn initial_configs(ext: &ExtendedAutomaton, pool: &[Value]) -> Vec<Config> {
    let ra = ext.ra();
    let k = ra.k() as usize;
    let mut out = Vec::new();
    for state in ra.initial_states() {
        if k == 0 {
            out.push(Config::new(state, Vec::new()));
            continue;
        }
        // Full enumeration pool^k (callers control pool size).
        let mut choice = vec![0usize; k];
        loop {
            let regs: Vec<Value> = choice.iter().map(|&c| pool[c]).collect();
            out.push(Config::new(state, regs));
            let mut i = 0;
            loop {
                if i == k {
                    break;
                }
                choice[i] += 1;
                if choice[i] < pool.len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == k {
                break;
            }
        }
    }
    out
}

/// Enumerates valid run prefixes of exactly `len` configurations (DFS),
/// respecting the global constraints, up to the limits.
pub fn enumerate_prefixes(
    ext: &ExtendedAutomaton,
    db: &Database,
    len: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> Vec<FiniteRun> {
    assert!(len >= 1);
    let cache = SatCache::new(ext.ra().schema().clone());
    let mut results = Vec::new();
    let mut nodes = 0usize;
    for init in initial_configs(ext, pool) {
        let mut monitor = ConstraintMonitor::new(ext);
        if monitor.step(ext, init.state, &init.regs).is_some() {
            continue;
        }
        let run = FiniteRun::start(init);
        dfs(
            ext,
            db,
            pool,
            len,
            limits,
            &mut nodes,
            run,
            monitor,
            &mut results,
            &cache,
        );
        if results.len() >= limits.max_runs || nodes >= limits.max_nodes {
            break;
        }
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ext: &ExtendedAutomaton,
    db: &Database,
    pool: &[Value],
    len: usize,
    limits: SearchLimits,
    nodes: &mut usize,
    run: FiniteRun,
    monitor: ConstraintMonitor,
    results: &mut Vec<FiniteRun>,
    cache: &SatCache,
) {
    if results.len() >= limits.max_runs || *nodes >= limits.max_nodes {
        return;
    }
    *nodes += 1;
    if run.configs.len() == len {
        results.push(run);
        return;
    }
    let cur = run.configs.last().expect("non-empty run");
    for (t, next) in successors_cached(ext, db, cur, pool, cache) {
        let mut m2 = monitor.clone();
        if m2.step(ext, next.state, &next.regs).is_some() {
            continue;
        }
        let mut r2 = run.clone();
        r2.push(t, next);
        dfs(ext, db, pool, len, limits, nodes, r2, m2, results, cache);
    }
}

/// Searches for a valid *lasso run* (an accepting ultimately periodic run)
/// with at most `max_len` stored positions. Loop closure is attempted
/// whenever a configuration repeats, and each candidate is re-verified
/// exactly with [`ExtendedAutomaton::check_lasso_run`].
pub fn find_lasso_run(
    ext: &ExtendedAutomaton,
    db: &Database,
    max_len: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> Result<Option<LassoRun>, CoreError> {
    let cache = SatCache::new(ext.ra().schema().clone());
    let mut nodes = 0usize;
    for init in initial_configs(ext, pool) {
        let mut stack = vec![FiniteRun::start(init)];
        while let Some(run) = stack.pop() {
            nodes += 1;
            if nodes >= limits.max_nodes {
                return Ok(None);
            }
            let cur = run.configs.last().expect("non-empty");
            for (t, next) in successors_cached(ext, db, cur, pool, &cache) {
                // Loop closure: next equals an earlier configuration.
                for (i, c) in run.configs.iter().enumerate() {
                    if *c == next {
                        let candidate = LassoRun::new(
                            run.configs.clone(),
                            run.trans
                                .iter()
                                .copied()
                                .chain(std::iter::once(t))
                                .collect(),
                            i,
                        );
                        if ext.check_lasso_run(db, &candidate).is_ok() {
                            return Ok(Some(candidate));
                        }
                    }
                }
                if run.configs.len() < max_len {
                    let mut r2 = run.clone();
                    r2.push(t, next);
                    stack.push(r2);
                }
            }
        }
    }
    Ok(None)
}

/// Searches for a lasso run whose *projected* register trace (first `m`
/// registers, `m` = the probe's tuple width) equals the given ultimately
/// periodic word, with hidden registers drawn from `pool`. This is the
/// semantic membership test for projection views: `probe ∈ Π_m(Reg(D, 𝒜))`?
///
/// The search walks `(position, configuration)` nodes with the visible
/// registers pinned to the probe; whenever a configuration recurs at the
/// same loop phase, the candidate lasso is verified exactly with
/// [`ExtendedAutomaton::check_lasso_run`]. Complete relative to `pool` and
/// the unrolling bound `max_len`.
pub fn find_lasso_with_projection(
    ext: &ExtendedAutomaton,
    db: &Database,
    probe: &rega_automata::Lasso<Vec<Value>>,
    pool: &[Value],
    max_len: usize,
    limits: SearchLimits,
) -> Result<Option<LassoRun>, CoreError> {
    let k = ext.ra().k() as usize;
    let m = probe.at(0).len();
    assert!(m <= k, "probe width exceeds register count");
    let phase = |pos: usize| {
        if pos < probe.prefix_len() {
            pos
        } else {
            probe.prefix_len() + (pos - probe.prefix_len()) % probe.period()
        }
    };
    // Initial configurations: visible pinned, hidden from the pool.
    let mut pool_all = pool.to_vec();
    for n in 0..probe.prefix_len() + probe.period() {
        for &v in probe.at(n) {
            if !pool_all.contains(&v) {
                pool_all.push(v);
            }
        }
    }
    let mut stack: Vec<(FiniteRun, usize)> = Vec::new();
    for init in initial_configs(ext, &pool_all) {
        if init.regs[..m] == probe.at(0)[..] {
            stack.push((FiniteRun::start(init), 0));
        }
    }
    let cache = SatCache::new(ext.ra().schema().clone());
    let mut nodes = 0usize;
    while let Some((run, pos)) = stack.pop() {
        nodes += 1;
        if nodes >= limits.max_nodes {
            return Ok(None);
        }
        let cur = run.configs.last().expect("non-empty");
        for (t, next) in successors_cached(ext, db, cur, &pool_all, &cache) {
            if next.regs[..m] != probe.at(pos + 1)[..] {
                continue;
            }
            // Loop closure: same configuration at the same phase.
            if pos + 1 >= probe.prefix_len() {
                for (i, c) in run.configs.iter().enumerate() {
                    if *c == next && phase(i) == phase(pos + 1) {
                        let candidate = LassoRun::new(
                            run.configs.clone(),
                            run.trans
                                .iter()
                                .copied()
                                .chain(std::iter::once(t))
                                .collect(),
                            i,
                        );
                        if ext.check_lasso_run(db, &candidate).is_ok() {
                            return Ok(Some(candidate));
                        }
                    }
                }
            }
            if run.configs.len() < max_len {
                let mut r2 = run.clone();
                r2.push(t, next);
                stack.push((r2, pos + 1));
            }
        }
    }
    Ok(None)
}

/// Like [`projected_prefix_traces`], but enumerates prefixes one step
/// longer and truncates the final position. Constructions that enforce a
/// constraint through the *outgoing* transition of a position (e.g.
/// Proposition 6's inline checks) agree with the at-arrival monitor
/// semantics on every settled position but not on the dangling last one;
/// differential tests compare settled traces.
pub fn projected_settled_traces(
    ext: &ExtendedAutomaton,
    db: &Database,
    len: usize,
    m: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> BTreeSet<Vec<Vec<Value>>> {
    enumerate_prefixes(ext, db, len + 1, pool, limits)
        .into_iter()
        .map(|r| {
            r.projected_register_trace(m)
                .into_iter()
                .take(len)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Collects the set of projected register traces (first `m` registers) of
/// all run prefixes of length `len` — the finite-horizon approximation of
/// `Π_m(Reg(D, 𝒜))` used by the differential experiments (E1, E7, E10).
pub fn projected_prefix_traces(
    ext: &ExtendedAutomaton,
    db: &Database,
    len: usize,
    m: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> BTreeSet<Vec<Vec<Value>>> {
    enumerate_prefixes(ext, db, len, pool, limits)
        .into_iter()
        .map(|r| r.projected_register_trace(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use rega_data::Schema;

    #[test]
    fn successors_respect_forced_equalities() {
        // Example 1's δ2 forces y2 = x2; register 1 free.
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let db = Database::new(Schema::empty());
        let q2 = ext.ra().state_by_name("q2").unwrap();
        let cur = Config::new(q2, vec![Value(10), Value(20)]);
        let pool = vec![Value(1), Value(2)];
        let succ = successors(&ext, &db, &cur, &pool);
        assert!(!succ.is_empty());
        for (_, cfg) in &succ {
            assert_eq!(cfg.regs[1], Value(20), "register 2 must be preserved");
        }
        // register 1 takes values from pool ∪ current registers
        let r1s: BTreeSet<Value> = succ
            .iter()
            .filter(|(_, c)| c.state == q2)
            .map(|(_, c)| c.regs[0])
            .collect();
        assert!(r1s.contains(&Value(1)));
        assert!(r1s.contains(&Value(2)));
    }

    #[test]
    fn enumerate_prefixes_of_example1() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let runs = enumerate_prefixes(&ext, &db, 3, &pool, SearchLimits::default());
        assert!(!runs.is_empty());
        for r in &runs {
            assert!(r.validate(ext.ra(), &db).is_ok());
            // first state must be q1, where δ1 forces x1 = x2
            assert_eq!(r.configs[0].regs[0], r.configs[0].regs[1]);
        }
    }

    #[test]
    fn find_lasso_in_example1() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let lasso = find_lasso_run(&ext, &db, 6, &pool, SearchLimits::default())
            .unwrap()
            .expect("example 1 has lasso runs");
        assert!(lasso.validate(ext.ra(), &db).is_ok());
    }

    #[test]
    fn example7_has_no_lasso_run() {
        // All-distinct constraint: no ultimately periodic run exists.
        let ext = paper::example7();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2), Value(3)];
        let lasso = find_lasso_run(&ext, &db, 5, &pool, SearchLimits::default()).unwrap();
        assert!(lasso.is_none());
    }

    #[test]
    fn example7_prefixes_exist_and_are_distinct() {
        let ext = paper::example7();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2), Value(3)];
        let runs = enumerate_prefixes(&ext, &db, 3, &pool, SearchLimits::default());
        assert!(!runs.is_empty());
        for r in &runs {
            let vals: BTreeSet<Value> = r.configs.iter().map(|c| c.regs[0]).collect();
            assert_eq!(vals.len(), 3, "all values must be distinct");
        }
    }

    #[test]
    fn example8_needs_database_values() {
        let ext = paper::example8();
        let schema = ext.ra().schema().clone();
        let prel = schema.relation("P").unwrap();
        let mut db = Database::new(schema);
        db.insert(prel, vec![Value(1)]).unwrap();
        let pool = default_pool(&db, 2);
        let runs = enumerate_prefixes(&ext, &db, 2, &pool, SearchLimits::default());
        assert!(!runs.is_empty());
        for r in &runs {
            // P(x1) constrains every position from which a transition has
            // fired; the final configuration is not yet constrained.
            for c in &r.configs[..r.configs.len() - 1] {
                assert_eq!(c.regs[0], Value(1), "register must be in P");
            }
        }
    }

    #[test]
    fn projected_traces_collects_set() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let set = projected_prefix_traces(&ext, &db, 2, 1, &pool, SearchLimits::default());
        // projections on register 1 of 2-step prefixes
        assert!(!set.is_empty());
        for trace in &set {
            assert_eq!(trace.len(), 2);
            assert_eq!(trace[0].len(), 1);
        }
    }
}
