//! Error type for automaton construction and analysis.

use rega_data::{DataError, GovernError};
use std::fmt;

/// Errors produced when building or manipulating automata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A data-layer error (bad type, unknown symbol, …).
    Data(DataError),
    /// A state id is out of range.
    UnknownState(u32),
    /// A transition id is out of range.
    UnknownTransition(u32),
    /// Two automata or components disagree on the number of registers.
    RegisterCountMismatch {
        /// Expected number of registers.
        expected: u16,
        /// Number of registers found.
        got: u16,
    },
    /// A constraint refers to a register out of range.
    ConstraintRegisterOutOfRange {
        /// The offending register index.
        index: u16,
        /// The number of registers.
        k: u16,
    },
    /// A regular-expression constraint mentions a state not in the automaton.
    ConstraintUnknownState(String),
    /// An operation needs a complete automaton but the automaton is not
    /// complete.
    NotComplete,
    /// An operation needs a state-driven automaton.
    NotStateDriven,
    /// An operation needs an automaton without a database (empty schema).
    SchemaNotEmpty,
    /// A run is structurally invalid (described by the message).
    InvalidRun(String),
    /// A search or decision procedure exceeded its configured budget.
    BudgetExceeded(String),
    /// The projection construction does not cover this input (described by
    /// the message); see the `rega-views` documentation for the supported
    /// fragment.
    UnsupportedProjection(String),
    /// A governed construction hit its resource budget (deadline, node or
    /// type ceiling, or cancellation); carries partial-progress diagnostics.
    Govern(GovernError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::UnknownState(s) => write!(f, "unknown state id {s}"),
            CoreError::UnknownTransition(t) => write!(f, "unknown transition id {t}"),
            CoreError::RegisterCountMismatch { expected, got } => {
                write!(f, "register count mismatch: expected {expected}, got {got}")
            }
            CoreError::ConstraintRegisterOutOfRange { index, k } => {
                write!(f, "constraint register {index} out of range (k = {k})")
            }
            CoreError::ConstraintUnknownState(name) => {
                write!(f, "constraint mentions unknown state `{name}`")
            }
            CoreError::NotComplete => write!(f, "automaton is not complete"),
            CoreError::NotStateDriven => write!(f, "automaton is not state-driven"),
            CoreError::SchemaNotEmpty => {
                write!(f, "operation requires an automaton without a database")
            }
            CoreError::InvalidRun(msg) => write!(f, "invalid run: {msg}"),
            CoreError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            CoreError::UnsupportedProjection(msg) => {
                write!(f, "unsupported projection input: {msg}")
            }
            CoreError::Govern(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        // Budget trips keep their type across the layer boundary, so callers
        // match one `CoreError::Govern` regardless of which layer tripped.
        match e {
            DataError::Govern(g) => CoreError::Govern(g),
            other => CoreError::Data(other),
        }
    }
}

impl From<GovernError> for CoreError {
    fn from(e: GovernError) -> Self {
        CoreError::Govern(e)
    }
}
