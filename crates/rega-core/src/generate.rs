//! Random automaton generation, for property-based tests and benchmark
//! workloads.
//!
//! The generator produces *valid* automata by construction: every type is
//! satisfiable (unsatisfiable random draws are repaired by dropping
//! literals), every state lies on a path from an initial state, and at
//! least one accepting state is reachable on a cycle (so the automaton has
//! symbolic control traces).

use crate::automaton::RegisterAutomaton;
use crate::extended::{ConstraintKind, ExtendedAutomaton};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rega_data::{Literal, RegIdx, Schema, SigmaType, Term};

/// Parameters for [`random_automaton`].
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Number of states.
    pub states: usize,
    /// Number of registers.
    pub k: u16,
    /// Transitions per state (at least 1).
    pub out_degree: usize,
    /// Expected number of (in)equality literals per type.
    pub literals_per_type: usize,
    /// Number of unary relations in the schema (0 = no database).
    pub unary_relations: usize,
    /// Probability that a type queries a relation.
    pub relational_probability: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            states: 3,
            k: 2,
            out_degree: 2,
            literals_per_type: 2,
            unary_relations: 0,
            relational_probability: 0.3,
        }
    }
}

fn random_term(rng: &mut StdRng, k: u16) -> Term {
    let i = rng.gen_range(0..k);
    if rng.gen_bool(0.5) {
        Term::x(i)
    } else {
        Term::y(i)
    }
}

/// Generates a random register automaton. All states are initial-reachable;
/// state 0 is initial; a random non-empty subset of states is accepting.
pub fn random_automaton(params: &GenParams, seed: u64) -> RegisterAutomaton {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schema = Schema::empty();
    for r in 0..params.unary_relations {
        schema
            .add_relation(&format!("U{r}"), 1)
            .expect("unique names");
    }
    let mut ra = RegisterAutomaton::new(params.k, schema.clone());
    for s in 0..params.states {
        ra.add_state(&format!("s{s}"));
    }
    let states: Vec<_> = ra.states().collect();
    ra.set_initial(states[0]);
    // Random accepting subset (non-empty).
    let acc = rng.gen_range(0..params.states);
    ra.set_accepting(states[acc]);
    for &s in &states {
        if rng.gen_bool(0.4) {
            ra.set_accepting(s);
        }
    }

    for &from in &states {
        for d in 0..params.out_degree.max(1) {
            // Target: chain to keep everything reachable, plus random jumps.
            let to = if d == 0 {
                states[(from.idx() + 1) % params.states]
            } else {
                states[rng.gen_range(0..params.states)]
            };
            // Random satisfiable type: draw literals, drop offenders.
            let mut ty = SigmaType::empty(params.k);
            for _ in 0..params.literals_per_type {
                if params.k == 0 {
                    break;
                }
                let lit = if rng.gen_bool(0.6) {
                    Literal::eq(
                        random_term(&mut rng, params.k),
                        random_term(&mut rng, params.k),
                    )
                } else {
                    Literal::neq(
                        random_term(&mut rng, params.k),
                        random_term(&mut rng, params.k),
                    )
                };
                let candidate = ty.with(lit);
                if candidate.is_satisfiable(&schema) {
                    ty = candidate;
                }
            }
            if params.unary_relations > 0
                && params.k > 0
                && rng.gen_bool(params.relational_probability)
            {
                let rel = rega_data::RelSym(rng.gen_range(0..params.unary_relations) as u32);
                let term = random_term(&mut rng, params.k);
                let lit = if rng.gen_bool(0.7) {
                    Literal::rel(rel, vec![term])
                } else {
                    Literal::not_rel(rel, vec![term])
                };
                let candidate = ty.with(lit);
                if candidate.is_satisfiable(&schema) {
                    ty = candidate;
                }
            }
            ra.add_transition(from, ty, to)
                .expect("satisfiable by construction");
        }
    }
    ra
}

/// Wraps a random automaton with random global constraints (over the full
/// state alphabet, so every factor window of the given shapes applies).
pub fn random_extended(params: &GenParams, n_constraints: usize, seed: u64) -> ExtendedAutomaton {
    let ra = random_automaton(params, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
    let states: Vec<_> = ra.states().collect();
    let mut ext = ExtendedAutomaton::new(ra);
    for _ in 0..n_constraints {
        if params.k == 0 {
            break;
        }
        let kind = if rng.gen_bool(0.5) {
            ConstraintKind::Equal
        } else {
            ConstraintKind::NotEqual
        };
        let i = RegIdx(rng.gen_range(0..params.k));
        let j = RegIdx(rng.gen_range(0..params.k));
        // Shape: a b* c over random states — factors with fixed endpoints.
        let a = states[rng.gen_range(0..states.len())];
        let b = states[rng.gen_range(0..states.len())];
        let c = states[rng.gen_range(0..states.len())];
        let regex = rega_automata::Regex::Concat(vec![
            rega_automata::Regex::Sym(a),
            rega_automata::Regex::Star(Box::new(rega_automata::Regex::Sym(b))),
            rega_automata::Regex::Sym(c),
        ]);
        if kind == ConstraintKind::Equal || a != c || a == b {
            // Avoid the degenerate single-position self-inequality
            // `a` (length-1 factor with i = j), which is unsatisfiable.
            if kind == ConstraintKind::NotEqual && a == c && i == j {
                continue;
            }
            ext.add_constraint(kind, i, j, regex).expect("valid");
        }
    }
    ext
}

/// Like [`random_extended`], but all constraints are equalities — the
/// Proposition 6 input class.
pub fn random_extended_equalities(
    params: &GenParams,
    n_constraints: usize,
    seed: u64,
) -> ExtendedAutomaton {
    let ra = random_automaton(params, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x51ed_270b));
    let states: Vec<_> = ra.states().collect();
    let mut ext = ExtendedAutomaton::new(ra);
    for _ in 0..n_constraints {
        if params.k == 0 {
            break;
        }
        let i = RegIdx(rng.gen_range(0..params.k));
        let j = RegIdx(rng.gen_range(0..params.k));
        let a = states[rng.gen_range(0..states.len())];
        let b = states[rng.gen_range(0..states.len())];
        let c = states[rng.gen_range(0..states.len())];
        let regex = rega_automata::Regex::Concat(vec![
            rega_automata::Regex::Sym(a),
            rega_automata::Regex::Star(Box::new(rega_automata::Regex::Sym(b))),
            rega_automata::Regex::Sym(c),
        ]);
        ext.add_constraint(ConstraintKind::Equal, i, j, regex)
            .expect("valid");
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_automata_are_valid() {
        for seed in 0..20 {
            let ra = random_automaton(&GenParams::default(), seed);
            assert_eq!(ra.num_states(), 3);
            assert!(ra.num_transitions() >= 3);
            for t in ra.transition_ids() {
                assert!(ra.transition(t).ty.is_satisfiable(ra.schema()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_automaton(&GenParams::default(), 7);
        let b = random_automaton(&GenParams::default(), 7);
        assert_eq!(a.num_transitions(), b.num_transitions());
        for t in a.transition_ids() {
            assert_eq!(a.transition(t).ty, b.transition(t).ty);
        }
    }

    #[test]
    fn extended_generation_adds_constraints() {
        let ext = random_extended(&GenParams::default(), 3, 11);
        assert!(ext.constraints().len() <= 3);
    }

    #[test]
    fn relational_generation() {
        let params = GenParams {
            unary_relations: 2,
            relational_probability: 1.0,
            ..Default::default()
        };
        let ra = random_automaton(&params, 3);
        assert_eq!(ra.schema().num_relations(), 2);
        let uses_relation = ra.transition_ids().any(|t| {
            ra.transition(t)
                .ty
                .literals()
                .any(|l| matches!(l, Literal::Rel { .. }))
        });
        assert!(uses_relation);
    }
}
