//! Graphviz (DOT) export for register automata, for inspecting workflows
//! and constructed views.
//!
//! ```sh
//! cargo run -p rega-examples --example quickstart | dot -Tsvg …
//! ```

use crate::automaton::RegisterAutomaton;
use crate::extended::{ConstraintKind, ExtendedAutomaton};

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the automaton as a DOT digraph: initial states get an inbound
/// arrow, accepting states a double circle, transitions their type as the
/// edge label.
pub fn to_dot(ra: &RegisterAutomaton) -> String {
    let mut out = String::from("digraph registerautomaton {\n  rankdir=LR;\n");
    for s in ra.states() {
        let shape = if ra.is_accepting(s) {
            "doublecircle"
        } else {
            "circle"
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            s.0,
            escape(ra.state_name(s)),
            shape
        ));
        if ra.is_initial(s) {
            out.push_str(&format!(
                "  start{0} [shape=point, style=invis];\n  start{0} -> n{0};\n",
                s.0
            ));
        }
    }
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\"];\n",
            tr.from.0,
            tr.to.0,
            escape(&tr.ty.to_string())
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders an extended automaton: the underlying automaton plus a legend
/// node listing the global constraints.
pub fn extended_to_dot(ext: &ExtendedAutomaton) -> String {
    let mut out = to_dot(ext.ra());
    if !ext.constraints().is_empty() {
        let mut legend = String::from("global constraints:\\l");
        for (n, c) in ext.constraints().iter().enumerate() {
            let op = match c.kind {
                ConstraintKind::Equal => "=",
                ConstraintKind::NotEqual => "≠",
            };
            let body = match &c.regex {
                Some(r) => r.render(&|s| ext.ra().state_name(*s).to_string()),
                None => format!("<{}-state DFA>", c.dfa().num_states()),
            };
            legend.push_str(&format!(
                "e{op}[{},{}] #{n}: {}\\l",
                c.i.0 + 1,
                c.j.0 + 1,
                escape(&body)
            ));
        }
        // Insert the legend before the closing brace.
        out.truncate(out.len() - 2);
        out.push_str(&format!("  legend [shape=note, label=\"{legend}\"];\n}}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn dot_contains_states_and_edges() {
        let (ra, _) = paper::example1();
        let dot = to_dot(&ra);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"q1\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn initial_marker_present() {
        let (ra, _) = paper::example1();
        let dot = to_dot(&ra);
        assert!(dot.contains("start0 -> n0"));
        assert!(!dot.contains("start1 -> n1"), "q2 is not initial");
    }

    #[test]
    fn extended_dot_lists_constraints() {
        let ext = paper::example5();
        let dot = extended_to_dot(&ext);
        assert!(dot.contains("legend"));
        assert!(dot.contains("p1 p2* p1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escaping_quotes() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
    }
}
