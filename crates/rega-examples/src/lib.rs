//! Examples live in /examples at the repository root; see the `[[example]]` entries in Cargo.toml.
