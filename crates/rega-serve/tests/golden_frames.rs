//! Golden-file wire-format tests: the exact bytes of encoded frames are
//! pinned under `testdata/`, in both framings. A change to the framing
//! (magic byte, length prefix, JSON serialization order) fails these
//! tests until the golden files are deliberately regenerated with
//! `UPDATE_GOLDEN=1 cargo test -p rega-serve --test golden_frames` — the
//! wire format is a compatibility surface, not an implementation detail.
//!
//! The vendored `serde_json` serializes objects from a `BTreeMap`, so key
//! order (and therefore every byte) is deterministic.

use rega_serve::proto::{read_frame, write_frame, FrameError, Framing, BINARY_MAGIC};
use serde_json::{json, Value as Json};
use std::io::Cursor;
use std::path::PathBuf;

/// The pinned corpus: one representative of every command, including
/// non-ASCII payloads and an embedded newline (which only the binary
/// framing can carry inside a payload string… encoded as `\n` escape in
/// JSON, so JSONL carries it too — the golden files prove it).
fn corpus() -> Vec<(&'static str, Json)> {
    vec![
        ("hello", json!({"cmd": "hello", "tenant": "acme"})),
        (
            "load_spec",
            json!({
                "cmd": "load-spec", "tenant": "acme", "name": "orders",
                "spec": "registers 1\nstate p init accept\ntrans p -> p : x1 = x1\n",
                "view": 1u64,
            }),
        ),
        (
            "open_session",
            json!({"cmd": "open-session", "tenant": "acme", "spec": "orders",
                   "session": "sess-0"}),
        ),
        (
            "event_batch",
            json!({
                "cmd": "event-batch", "tenant": "acmé", "spec": "orders",
                "events": [
                    {"session": "sess-0", "state": "p", "regs": [1u64, 2u64]},
                    {"session": "sess-0", "end": true},
                ],
            }),
        ),
        (
            "close",
            json!({"cmd": "close", "tenant": "acme", "spec": "orders"}),
        ),
    ]
}

fn golden_path(name: &str, framing: Framing) -> PathBuf {
    let ext = match framing {
        Framing::Jsonl => "jsonl",
        Framing::Binary => "bin",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(format!("{name}.{ext}.golden"))
}

fn encode(framing: Framing, doc: &Json) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, framing, doc).unwrap();
    buf
}

#[test]
fn golden_frames_are_byte_identical() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for (name, doc) in corpus() {
        for framing in [Framing::Jsonl, Framing::Binary] {
            let path = golden_path(name, framing);
            let encoded = encode(framing, &doc);
            if update {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &encoded).unwrap();
                continue;
            }
            let golden = std::fs::read(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden file {} ({e}); regenerate with \
                     UPDATE_GOLDEN=1 cargo test -p rega-serve --test golden_frames",
                    path.display()
                )
            });
            // Encode → bytes must match the pinned file exactly.
            assert_eq!(
                encoded,
                golden,
                "{name} ({framing:?}): encoding drifted from the golden bytes\n\
                 encoded: {:?}\n golden: {:?}",
                String::from_utf8_lossy(&encoded),
                String::from_utf8_lossy(&golden),
            );
            // Decode the *golden* bytes → must round-trip to the document
            // and report the framing it was written in.
            let mut cursor = Cursor::new(golden.clone());
            let (got_framing, got) = read_frame(&mut cursor)
                .unwrap_or_else(|e| panic!("{name} ({framing:?}): decode failed: {e}"))
                .expect("golden file holds one frame");
            assert_eq!(got_framing, framing, "{name}: framing tag drifted");
            assert_eq!(got, doc, "{name} ({framing:?}): decoded document drifted");
            assert_eq!(
                cursor.position() as usize,
                golden.len(),
                "{name} ({framing:?}): decoder left trailing bytes unconsumed"
            );
        }
    }
}

/// Every truncation of a golden binary frame must be rejected (never
/// silently accepted, never a panic), and an adversarial length prefix is
/// refused before any payload allocation.
#[test]
fn corrupted_golden_frames_are_rejected() {
    for (name, doc) in corpus() {
        let frame = encode(Framing::Binary, &doc);
        for cut in 1..frame.len() {
            let mut truncated = frame.clone();
            truncated.truncate(cut);
            match read_frame(&mut Cursor::new(truncated)) {
                Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => {}
                Ok(other) => panic!("{name}: truncation at {cut} decoded as {other:?}"),
                Err(other) => panic!("{name}: truncation at {cut} gave {other:?}"),
            }
        }
    }
    // A length prefix past MAX_FRAME_LEN is refused up front.
    let mut hostile = vec![BINARY_MAGIC];
    hostile.extend(u32::MAX.to_be_bytes());
    hostile.extend(b"ignored");
    match read_frame(&mut Cursor::new(hostile)) {
        Err(FrameError::Oversized { len, .. }) => assert_eq!(len, u32::MAX as usize),
        other => panic!("oversized frame gave {other:?}"),
    }
}
