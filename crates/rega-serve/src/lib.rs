#![warn(missing_docs)]

//! `rega-serve` — the network-facing, multi-tenant view-monitoring
//! service.
//!
//! The batch `rega monitor` CLI reads one JSONL file against one
//! specification and exits. A deployed monitoring system looks different:
//! it runs for weeks, serves many *tenants* (each with their own
//! specifications and sessions), admits or rejects work against per-tenant
//! quotas, and must shut down without losing in-flight verdicts. This
//! crate promotes the `rega-stream` engine to exactly that — a std-only,
//! long-running TCP server:
//!
//! * [`proto`] — the wire protocol. Two framings share one socket and may
//!   be mixed per message: newline-delimited JSON (human/debug: `nc` into
//!   the server and type) and a length-prefixed binary framing (hot path:
//!   no newline scanning, payloads may contain newlines). Responses mirror
//!   the request's framing. The command set is small and explicit:
//!   `hello`, `load-spec`, `open-session`, `event`, `event-batch`,
//!   `snapshot`, `close`, `stats`, `health`.
//! * [`tenant`] — the tenant layer: a registry mapping tenant →
//!   compiled specs → sessions, with typed [`AdmissionError`]s for every
//!   quota (tenant count, specs per tenant, sessions per tenant), a
//!   per-tenant [`BudgetSpec`](rega_data::BudgetSpec) governing spec
//!   compilation (tightened against the server-wide ceiling, so no tenant
//!   can loosen a global limit), per-tenant quarantine caps, and
//!   per-tenant counters registered under `serve.tenant.<name>.*` in a
//!   shared [`rega_obs::Registry`].
//! * [`server`] — the TCP listener and connection threads, with a
//!   connection cap, periodic JSONL metrics snapshots, and a graceful
//!   drain: on SIGTERM/SIGINT the server stops accepting, lets in-flight
//!   requests finish, drains every tenant engine through the existing
//!   `Engine::finish` path (all queued events are processed), and returns
//!   a final report carrying every session's verdict.
//! * [`signal`] — the shared SIGINT + SIGTERM handler, extracted from the
//!   CLI so the batch commands and the server use one drain path.
//!
//! Everything is `std` (`TcpListener`, `std::thread`); the crate
//! introduces no new dependencies.

pub mod proto;
pub mod server;
pub mod signal;
pub mod tenant;

pub use proto::{read_frame, write_frame, Command, FrameError, Framing, MAX_FRAME_LEN};
pub use server::{Server, ServerConfig};
pub use tenant::{AdmissionError, IngestError, TenantQuotas, TenantRegistry};
