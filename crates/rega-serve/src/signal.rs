//! Shared SIGINT + SIGTERM handling for the CLI and the server.
//!
//! This is the one drain path: both the batch CLI commands and `rega
//! serve` call [`install`] with the leaked cancellation flag of their
//! [`Budget`](rega_data::Budget) (see
//! [`CancelToken::leaked_flag`](rega_data::CancelToken::leaked_flag)), and
//! both signals then (a) flip a process-wide "triggered" marker that the
//! event/accept loops poll between units of work, and (b) flip the
//! budget's cancellation flag so governed symbolic constructions unwind
//! with `GovernError::Cancelled` within one stride.
//!
//! A signal handler may only touch `static` atomics, so the budget flag is
//! stored as a raw pointer in a `static` — the pointer comes from a leaked
//! (never freed) `&'static AtomicBool`, which makes the handler's store
//! async-signal safe. Ctrl-c at a terminal delivers SIGINT; process
//! supervisors (systemd, Kubernetes, `timeout(1)`) deliver SIGTERM first —
//! handling both with the same drain semantics is what makes the server
//! shut down cleanly under real supervision.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[cfg(unix)]
mod imp {
    use super::*;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    static CANCEL_FLAG: AtomicUsize = AtomicUsize::new(0);
    static SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SEEN.store(true, Ordering::SeqCst);
        let p = CANCEL_FLAG.load(Ordering::SeqCst);
        if p != 0 {
            // Safety: the pointer was produced from a leaked (never freed)
            // `&'static AtomicBool` in `install`.
            unsafe { &*(p as *const AtomicBool) }.store(true, Ordering::SeqCst);
        }
    }

    pub fn install(flag: &'static AtomicBool) {
        CANCEL_FLAG.store(flag as *const AtomicBool as usize, Ordering::SeqCst);
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn triggered() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    pub fn install(_flag: &'static AtomicBool) {}

    pub fn triggered() -> bool {
        false
    }
}

/// Installs one handler for both SIGINT and SIGTERM. Either signal flips
/// the process-wide [`triggered`] marker and stores `true` into `flag`
/// (pass [`CancelToken::leaked_flag`](rega_data::CancelToken::leaked_flag)
/// so governed constructions see the cancellation too). Call once at
/// process start; a second call replaces the observed flag.
pub fn install(flag: &'static AtomicBool) {
    imp::install(flag)
}

/// Whether SIGINT or SIGTERM has been received since [`install`].
pub fn triggered() -> bool {
    imp::triggered()
}
