//! The TCP server: accept loop, connection threads, graceful drain.
//!
//! One thread per connection (bounded by [`ServerConfig::max_conns`]),
//! each speaking both wire framings (see [`crate::proto`]). The accept
//! loop polls a shutdown flag (and the process-wide
//! [`signal::triggered`](crate::signal::triggered) marker) between
//! accepts; when either fires the server:
//!
//! 1. stops accepting (the listener keeps refusing by simply not being
//!    polled; over-cap and post-drain connects get a typed `draining`
//!    rejection),
//! 2. flips the tenant registry into draining mode — admission requests
//!    are rejected with [`AdmissionError::Draining`](crate::tenant::AdmissionError)
//!    but events for already-open sessions still flow,
//! 3. joins every connection thread (each notices the flag within its
//!    ~100 ms read-poll interval and finishes its in-flight request),
//! 4. drains every tenant engine through the engine's `finish` path (all
//!    queued events are processed, every session's verdict is final), and
//! 5. returns the combined final report; the CLI prints it and exits 0 —
//!    a signal-initiated drain is a *clean* shutdown, not an error.

use crate::proto::{self, parse_request, read_frame, write_frame, Command, FrameError, Framing};
use crate::tenant::{TenantQuotas, TenantRegistry};
use rega_data::BudgetSpec;
use rega_obs::Registry;
use rega_stream::EngineConfig;
use serde_json::{json, Value as Json};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything `rega serve` is configured with.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to listen on, e.g. `127.0.0.1:7878` (port `0` picks a free
    /// one — tests read it back from [`Server::local_addr`]).
    pub listen: String,
    /// Tenant namespaces admitted at once.
    pub max_tenants: usize,
    /// Concurrent connections; the cap + 1-st connect is answered with a
    /// typed `conn-limit` error and closed.
    pub max_conns: usize,
    /// Default quotas for every admitted tenant.
    pub quotas: TenantQuotas,
    /// Server-wide compile ceiling; every tenant budget is tightened
    /// against it (a tenant can lower but never raise these limits).
    pub server_budget: BudgetSpec,
    /// Engine sizing template for every spec's engine.
    pub engine: EngineConfig,
    /// Emit one JSONL metrics-registry snapshot per interval on stderr.
    pub metrics_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_tenants: 16,
            max_conns: 64,
            quotas: TenantQuotas::default(),
            server_budget: BudgetSpec::none(),
            engine: EngineConfig::default(),
            metrics_interval: None,
        }
    }
}

/// How often idle loops (accept, connection read) re-check the shutdown
/// flag. Bounds how long a drain can lag behind the signal.
const POLL: Duration = Duration::from_millis(100);

/// Read timeout while a frame is actually in flight: a slow-writing client
/// gets this long between bytes before the frame is abandoned.
const IN_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// The listening server. [`Server::bind`] then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    tenants: Arc<TenantRegistry>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and builds the tenant registry (with its own
    /// fresh metrics [`Registry`]).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_with_registry(config, Arc::new(Registry::new()))
    }

    /// [`Server::bind`] against a caller-supplied metrics registry (so a
    /// host process can fold server metrics into its own snapshot).
    pub fn bind_with_registry(
        config: ServerConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let tenants = Arc::new(TenantRegistry::new(
            config.max_tenants,
            config.quotas.clone(),
            config.server_budget.clone(),
            config.engine.clone(),
            registry,
        ));
        Ok(Server {
            listener,
            tenants,
            config,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The tenant registry (tests inspect quotas and drain state).
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// Serves until `shutdown` is set (or a SIGINT/SIGTERM arrives via
    /// [`signal::triggered`](crate::signal::triggered)), then drains and
    /// returns the final report: one entry per tenant, one report per
    /// spec, every report carrying each session's final verdict.
    pub fn run(&self, shutdown: Arc<AtomicBool>) -> Json {
        let registry = Arc::clone(self.tenants.metrics());
        let conns_open = registry.gauge("serve.connections.open");
        let conns_total = registry.counter("serve.connections.total");
        let conns_rejected = registry.counter("serve.connections.rejected");
        let mut threads = Vec::new();
        let active = Arc::new(AtomicUsize::new(0));
        let mut last_snapshot = Instant::now();
        loop {
            if shutdown.load(Ordering::SeqCst) || crate::signal::triggered() {
                break;
            }
            if let Some(interval) = self.config.metrics_interval {
                if last_snapshot.elapsed() >= interval {
                    last_snapshot = Instant::now();
                    if let Ok(line) = serde_json::to_string(&registry.snapshot()) {
                        eprintln!("{line}");
                    }
                }
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    conns_total.inc();
                    if active.load(Ordering::SeqCst) >= self.config.max_conns {
                        conns_rejected.inc();
                        reject_connection(stream, "conn-limit", "connection limit reached");
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    conns_open.inc();
                    let tenants = Arc::clone(&self.tenants);
                    let shutdown = Arc::clone(&shutdown);
                    let active = Arc::clone(&active);
                    let conns_open = conns_open.clone();
                    let requests = registry.counter("serve.requests.total");
                    let failures = registry.counter("serve.requests.failed");
                    threads.push(std::thread::spawn(move || {
                        let _ = serve_connection(stream, &tenants, &shutdown, &requests, &failures);
                        active.fetch_sub(1, Ordering::SeqCst);
                        conns_open.dec();
                    }));
                }
                Err(e) if proto::is_timeout(&e) => std::thread::sleep(POLL),
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {}
                Err(_) => std::thread::sleep(POLL),
            }
        }
        // Drain: no new admissions, in-flight requests finish, engines
        // flush, final verdicts come back.
        self.tenants.start_draining();
        for t in threads {
            let _ = t.join();
        }
        let drained = self.tenants.drain_all();
        // One last metrics snapshot so the trailing JSONL line reflects
        // the drained state.
        if self.config.metrics_interval.is_some() {
            if let Ok(line) = serde_json::to_string(&registry.snapshot()) {
                eprintln!("{line}");
            }
        }
        json!({"clean": true, "drained": drained})
    }
}

/// Answers an over-cap connection with one typed JSONL error and closes.
fn reject_connection(mut stream: TcpStream, code: &str, message: &str) {
    let _ = stream.set_nodelay(true);
    let doc = json!({"ok": false, "error": {"code": code, "message": message}});
    let _ = write_frame(&mut stream, Framing::Jsonl, &doc);
}

/// One connection: poll for a frame, dispatch, answer in the same framing.
fn serve_connection(
    stream: TcpStream,
    tenants: &TenantRegistry,
    shutdown: &AtomicBool,
    requests: &rega_obs::Counter,
    failures: &rega_obs::Counter,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) || crate::signal::triggered() {
            return Ok(());
        }
        // Idle-poll with the short timeout; only once bytes are waiting is
        // the longer in-frame timeout applied, so a half-written frame
        // cannot wedge the drain but a slow writer is not cut off either.
        use std::io::BufRead;
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e) if proto::is_timeout(&e) => continue,
            Err(e) => return Err(e),
        }
        reader.get_ref().set_read_timeout(Some(IN_FRAME_TIMEOUT))?;
        let frame = read_frame(&mut reader);
        reader.get_ref().set_read_timeout(Some(POLL))?;
        match frame {
            Ok(None) => return Ok(()),
            Ok(Some((framing, doc))) => {
                requests.inc();
                let response = match parse_request(&doc) {
                    Ok(cmd) => dispatch(cmd, tenants),
                    Err(message) => {
                        json!({"ok": false, "error": {"code": "bad-request", "message": message}})
                    }
                };
                if response["ok"] != json!(true) {
                    failures.inc();
                }
                write_frame(&mut writer, framing, &response)?;
            }
            Err(FrameError::BadJson(message)) => {
                // The malformed message was fully consumed; the stream is
                // still in sync, so answer and keep serving.
                failures.inc();
                let doc = json!({"ok": false, "error": {"code": "bad-json", "message": message}});
                write_frame(&mut writer, Framing::Jsonl, &doc)?;
            }
            Err(e @ (FrameError::Oversized { .. } | FrameError::Truncated { .. })) => {
                // The stream is desynchronized (unread payload bytes, or a
                // peer that stopped mid-frame): answer once and hang up.
                failures.inc();
                let doc = json!({"ok": false, "error": {
                    "code": match e { FrameError::Oversized { .. } => "frame-oversized",
                                       _ => "frame-truncated" },
                    "message": e.to_string(),
                }});
                let _ = write_frame(&mut writer, Framing::Jsonl, &doc);
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()),
        }
    }
}

/// Annotates an ingest error object with how many events of the request
/// were accepted before the failure (partial-batch accounting).
fn with_accepted(mut error: Json, accepted: u64) -> Json {
    if let Json::Object(map) = &mut error {
        map.insert("accepted".to_string(), Json::from(accepted));
    }
    error
}

/// Executes one command against the tenant registry and shapes the wire
/// response. Admission failures come back as the error's typed JSON.
fn dispatch(cmd: Command, tenants: &TenantRegistry) -> Json {
    let fail = |error: Json| json!({"ok": false, "error": error});
    match cmd {
        Command::Hello { tenant } => match tenants.hello(&tenant) {
            Ok(created) => json!({"ok": true, "cmd": "hello", "tenant": tenant,
                                  "created": created}),
            Err(e) => fail(e.to_json()),
        },
        Command::LoadSpec {
            tenant,
            name,
            spec,
            view,
        } => match tenants.load_spec(&tenant, &name, &spec, view) {
            Ok(registers) => json!({"ok": true, "cmd": "load-spec", "spec": name,
                                    "registers": registers}),
            Err(e) => fail(e.to_json()),
        },
        Command::OpenSession {
            tenant,
            spec,
            session,
        } => match tenants.open_session(&tenant, &spec, &session) {
            Ok(()) => json!({"ok": true, "cmd": "open-session", "session": session}),
            Err(e) => fail(e.to_json()),
        },
        Command::Event {
            tenant,
            spec,
            event,
        } => match tenants.ingest(&tenant, &spec, std::slice::from_ref(&event)) {
            Ok(n) => json!({"ok": true, "cmd": "event", "accepted": n}),
            Err((accepted, e)) => fail(with_accepted(e.to_json(), accepted)),
        },
        Command::EventBatch {
            tenant,
            spec,
            events,
        } => match tenants.ingest(&tenant, &spec, &events) {
            Ok(n) => json!({"ok": true, "cmd": "event-batch", "accepted": n}),
            Err((accepted, e)) => fail(with_accepted(e.to_json(), accepted)),
        },
        Command::Snapshot { tenant } => match tenants.snapshot(&tenant) {
            Ok(snapshot) => json!({"ok": true, "cmd": "snapshot", "snapshot": snapshot}),
            Err(e) => fail(e.to_json()),
        },
        Command::Close {
            tenant,
            spec,
            session,
        } => match (spec, session) {
            (Some(spec), Some(session)) => match tenants.close_session(&tenant, &spec, &session) {
                Ok(()) => json!({"ok": true, "cmd": "close", "session": session}),
                Err(e) => fail(e.to_json()),
            },
            (Some(spec), None) => match tenants.close_spec(&tenant, &spec) {
                Ok(report) => json!({"ok": true, "cmd": "close", "report": report}),
                Err(e) => fail(e.to_json()),
            },
            (None, _) => match tenants.close_tenant(&tenant) {
                Ok(report) => json!({"ok": true, "cmd": "close", "report": report}),
                Err(e) => fail(e.to_json()),
            },
        },
        Command::Stats => json!({"ok": true, "cmd": "stats", "stats": tenants.stats()}),
        Command::Health => json!({
            "ok": true,
            "cmd": "health",
            "status": if tenants.is_draining() { "draining" } else { "serving" },
        }),
    }
}
