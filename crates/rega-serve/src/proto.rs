//! The wire protocol: two framings over one TCP socket, one command set.
//!
//! # Framing
//!
//! Every message (request or response) is one JSON document, carried in
//! one of two framings, distinguishable by the first byte and freely
//! mixable on one connection:
//!
//! * **JSONL** — the document serialized on one line, terminated by `\n`.
//!   This is the human/debug framing: `nc` into the server and type.
//!   JSON documents start with `{`, `[`, a digit, `"`, `t`, `f`, or `n` —
//!   never with the binary magic byte below.
//! * **Binary** — a length-prefixed frame for the hot path: the magic
//!   byte [`BINARY_MAGIC`] (`0xB5`, not valid ASCII and not a valid JSON
//!   first byte), a 4-byte big-endian payload length, then exactly that
//!   many payload bytes holding the serialized document. No newline
//!   scanning, and payloads may contain newlines.
//!
//! Frames longer than [`MAX_FRAME_LEN`] are rejected *before* the payload
//! is read ([`FrameError::Oversized`]); a frame whose stream ends before
//! the announced length is [`FrameError::Truncated`]. Responses always
//! mirror the framing of the request they answer.
//!
//! # Commands
//!
//! A request is a JSON object with a `cmd` field; everything else is
//! command-specific. The full set: `hello`, `load-spec`, `open-session`,
//! `event`, `event-batch`, `snapshot`, `close`, `stats`, `health` — see
//! [`Command`] for fields. Responses are objects with `"ok": true` plus
//! command-specific fields, or `"ok": false` with a typed `error` object
//! (`code`, `message`, and structured detail).

use serde_json::Value as Json;
use std::fmt;
use std::io::{BufRead, Read, Write};

/// First byte of a binary frame. Deliberately outside ASCII and not a
/// byte any JSON document can start with, so the two framings are
/// unambiguous per message.
pub const BINARY_MAGIC: u8 = 0xB5;

/// Hard ceiling on one frame's payload (and on one JSONL line), applied
/// before any payload bytes are read: a hostile length prefix cannot make
/// the server allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20; // 1 MiB

/// Which framing a message arrived in (responses mirror it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON.
    Jsonl,
    /// Magic byte + 4-byte big-endian length + payload.
    Binary,
}

/// Why a frame could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed (includes read timeouts).
    Io(String),
    /// A binary frame announced a payload longer than [`MAX_FRAME_LEN`],
    /// or a JSONL line ran past it without a newline.
    Oversized {
        /// Announced (or accumulated) length.
        len: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The stream ended before the announced payload was complete.
    Truncated {
        /// Bytes the frame announced.
        wanted: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload is not valid JSON.
    BadJson(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { wanted, got } => {
                write!(f, "truncated frame: announced {wanted} bytes, got {got}")
            }
            FrameError::BadJson(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether a read error is a timeout (the connection loops poll their
/// drain flag on timeouts instead of giving up on the peer).
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one document in the given framing. JSONL appends `\n`; binary
/// prefixes [`BINARY_MAGIC`] and the big-endian payload length.
pub fn write_frame<W: Write>(w: &mut W, framing: Framing, doc: &Json) -> std::io::Result<()> {
    let payload = serde_json::to_string(doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    match framing {
        Framing::Jsonl => {
            w.write_all(payload.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Framing::Binary => {
            let len = payload.len() as u32;
            w.write_all(&[BINARY_MAGIC])?;
            w.write_all(&len.to_be_bytes())?;
            w.write_all(payload.as_bytes())?;
        }
    }
    w.flush()
}

/// Reads one message in either framing. Returns `Ok(None)` on a clean EOF
/// at a message boundary. Timeouts surface as `FrameError::Io` whose
/// message the caller can test with the stream's own error; the server's
/// connection loop instead passes a reader whose timeouts it handles
/// before calling this.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<(Framing, Json)>, FrameError> {
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e.to_string())),
    }
    if first[0] == BINARY_MAGIC {
        let mut len_bytes = [0u8; 4];
        read_exact_counted(r, &mut len_bytes, 4)?;
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let mut payload = vec![0u8; len];
        read_exact_counted(r, &mut payload, len)?;
        let text = String::from_utf8(payload)
            .map_err(|e| FrameError::BadJson(format!("payload is not UTF-8: {e}")))?;
        let doc = serde_json::from_str(&text).map_err(|e| FrameError::BadJson(e.to_string()))?;
        Ok(Some((Framing::Binary, doc)))
    } else {
        // JSONL: accumulate until the newline (the first byte is part of
        // the line), bounded by the same frame ceiling.
        let mut line = vec![first[0]];
        loop {
            let mut b = [0u8; 1];
            match r.read(&mut b) {
                Ok(0) => break, // unterminated final line: still a line
                Ok(_) if b[0] == b'\n' => break,
                Ok(_) => {
                    line.push(b[0]);
                    if line.len() > MAX_FRAME_LEN {
                        return Err(FrameError::Oversized {
                            len: line.len(),
                            max: MAX_FRAME_LEN,
                        });
                    }
                }
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        let text = String::from_utf8(line)
            .map_err(|e| FrameError::BadJson(format!("line is not UTF-8: {e}")))?;
        let doc = serde_json::from_str(&text).map_err(|e| FrameError::BadJson(e.to_string()))?;
        Ok(Some((Framing::Jsonl, doc)))
    }
}

/// `read_exact` that reports how many bytes were present on a short read,
/// so truncation errors are actionable.
fn read_exact_counted<R: Read>(r: &mut R, buf: &mut [u8], wanted: usize) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(FrameError::Truncated { wanted, got }),
            Ok(n) => got += n,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// A parsed request. Every variant names the tenant it acts for (except
/// the server-wide `stats` / `health` probes).
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `{"cmd":"hello","tenant":T}` — admit (or re-greet) a tenant.
    Hello {
        /// Tenant namespace to admit.
        tenant: String,
    },
    /// `{"cmd":"load-spec","tenant":T,"name":N,"spec":TEXT,"view":M?}` —
    /// compile a spec (counted against the tenant's spec quota, governed
    /// by its compile budget) and start its engine.
    LoadSpec {
        /// Owning tenant.
        tenant: String,
        /// Name the spec is addressed by in later commands.
        name: String,
        /// The spec source text, in `rega_core::spec` syntax.
        spec: String,
        /// Optionally build the projection view onto the first `view`
        /// registers and attach per-session view observers.
        view: Option<u16>,
    },
    /// `{"cmd":"open-session","tenant":T,"spec":S,"session":ID}` — admit
    /// a session against the tenant's session quota.
    OpenSession {
        /// Owning tenant.
        tenant: String,
        /// Spec the session runs against.
        spec: String,
        /// Session identifier (demultiplexing key).
        session: String,
    },
    /// `{"cmd":"event","tenant":T,"spec":S,"event":E}` — ingest one event
    /// (`E` is the standard monitor event object, or its JSONL line as a
    /// string).
    Event {
        /// Owning tenant.
        tenant: String,
        /// Target spec.
        spec: String,
        /// The event document.
        event: Json,
    },
    /// `{"cmd":"event-batch","tenant":T,"spec":S,"events":[E,…]}` — ingest
    /// many events in one frame (the hot path).
    EventBatch {
        /// Owning tenant.
        tenant: String,
        /// Target spec.
        spec: String,
        /// Event documents, each as in `event`.
        events: Vec<Json>,
    },
    /// `{"cmd":"snapshot","tenant":T}` — the tenant's live state: specs,
    /// open sessions, and its `serve.tenant.<T>.*` metrics.
    Snapshot {
        /// Tenant to snapshot.
        tenant: String,
    },
    /// `{"cmd":"close","tenant":T,"spec":S?,"session":ID?}` — close a
    /// session (its terminal event is submitted), a spec (its engine is
    /// drained and every session's verdict returned), or the whole tenant.
    Close {
        /// Owning tenant.
        tenant: String,
        /// Spec to close (required when `session` is given).
        spec: Option<String>,
        /// Session to close.
        session: Option<String>,
    },
    /// `{"cmd":"stats"}` — server-wide counters and the full metrics
    /// registry snapshot.
    Stats,
    /// `{"cmd":"health"}` — liveness probe; reports `serving` or
    /// `draining`.
    Health,
}

/// Extracts a required string field.
fn str_field(obj: &Json, field: &'static str) -> Result<String, String> {
    obj.get(field)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("field `{field}` must be a string"))
}

/// Parses one request document into a [`Command`]; the error is the
/// message for the typed `bad-request` response.
pub fn parse_request(doc: &Json) -> Result<Command, String> {
    let obj = doc
        .as_object()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    let cmd = obj
        .get("cmd")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "field `cmd` must be a string".to_string())?;
    match cmd {
        "hello" => Ok(Command::Hello {
            tenant: str_field(doc, "tenant")?,
        }),
        "load-spec" => {
            let view = match obj.get("view") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .filter(|&m| m <= u64::from(u16::MAX))
                        .ok_or_else(|| "field `view` must be a register count".to_string())?
                        as u16,
                ),
            };
            Ok(Command::LoadSpec {
                tenant: str_field(doc, "tenant")?,
                name: str_field(doc, "name")?,
                spec: str_field(doc, "spec")?,
                view,
            })
        }
        "open-session" => Ok(Command::OpenSession {
            tenant: str_field(doc, "tenant")?,
            spec: str_field(doc, "spec")?,
            session: str_field(doc, "session")?,
        }),
        "event" => Ok(Command::Event {
            tenant: str_field(doc, "tenant")?,
            spec: str_field(doc, "spec")?,
            event: obj
                .get("event")
                .cloned()
                .ok_or_else(|| "field `event` is required".to_string())?,
        }),
        "event-batch" => {
            let events = obj
                .get("events")
                .and_then(|v| v.as_array())
                .ok_or_else(|| "field `events` must be an array".to_string())?;
            Ok(Command::EventBatch {
                tenant: str_field(doc, "tenant")?,
                spec: str_field(doc, "spec")?,
                events: events.clone(),
            })
        }
        "snapshot" => Ok(Command::Snapshot {
            tenant: str_field(doc, "tenant")?,
        }),
        "close" => {
            let spec = match obj.get("spec") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "field `spec` must be a string".to_string())?,
                ),
            };
            let session = match obj.get("session") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "field `session` must be a string".to_string())?,
                ),
            };
            if session.is_some() && spec.is_none() {
                return Err("closing a session requires its `spec`".to_string());
            }
            Ok(Command::Close {
                tenant: str_field(doc, "tenant")?,
                spec,
                session,
            })
        }
        "stats" => Ok(Command::Stats),
        "health" => Ok(Command::Health),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// The canonical event document an [`Command::Event`] carries, rendered
/// back to the exact JSONL line the batch monitor would have read: object
/// payloads are serialized (sorted keys, the vendored serializer's
/// canonical form), string payloads pass through verbatim.
pub fn event_line(event: &Json) -> Result<String, String> {
    match event {
        Json::String(line) => Ok(line.clone()),
        Json::Object(_) => serde_json::to_string(event).map_err(|e| e.to_string()),
        _ => Err("an event must be an object or a JSONL line string".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::Cursor;

    fn roundtrip(framing: Framing, doc: &Json) -> (Vec<u8>, Json) {
        let mut buf = Vec::new();
        write_frame(&mut buf, framing, doc).unwrap();
        let mut cursor = Cursor::new(buf.clone());
        let (got_framing, got) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got_framing, framing);
        // The whole frame must be consumed — nothing left dangling.
        assert_eq!(cursor.position() as usize, cursor.get_ref().len());
        (buf, got)
    }

    #[test]
    fn frames_round_trip_in_both_framings() {
        let docs = [
            json!({"cmd": "health"}),
            json!({"cmd": "event", "tenant": "t", "spec": "s",
                   "event": {"session": "s0", "state": "q", "regs": [1u64, 2u64]}}),
            json!({"cmd": "load-spec", "tenant": "t", "name": "n",
                   "spec": "registers 1\nstate p init accept\n"}),
        ];
        for doc in &docs {
            let (_, got) = roundtrip(Framing::Jsonl, doc);
            assert_eq!(&got, doc);
            let (_, got) = roundtrip(Framing::Binary, doc);
            assert_eq!(&got, doc);
        }
    }

    #[test]
    fn mixed_framings_on_one_stream() {
        let a = json!({"cmd": "health"});
        let b = json!({"cmd": "stats"});
        let mut buf = Vec::new();
        write_frame(&mut buf, Framing::Jsonl, &a).unwrap();
        write_frame(&mut buf, Framing::Binary, &b).unwrap();
        write_frame(&mut buf, Framing::Jsonl, &b).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((Framing::Jsonl, a.clone()))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((Framing::Binary, b.clone()))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Some((Framing::Jsonl, b)));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        // Oversized binary frame: rejected from the length prefix alone,
        // before any payload is read.
        let mut buf = vec![BINARY_MAGIC];
        buf.extend(((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN,
            }
        );

        // Truncated binary frame: announced 100 bytes, stream has 5.
        let mut buf = vec![BINARY_MAGIC];
        buf.extend(100u32.to_be_bytes());
        buf.extend(b"{\"cmd");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            FrameError::Truncated {
                wanted: 100,
                got: 5
            }
        );

        // Truncated length prefix.
        let err = read_frame(&mut Cursor::new(vec![BINARY_MAGIC, 0, 0])).unwrap_err();
        assert_eq!(err, FrameError::Truncated { wanted: 4, got: 2 });
    }

    #[test]
    fn parse_request_covers_the_command_set() {
        assert_eq!(
            parse_request(&json!({"cmd": "hello", "tenant": "acme"})).unwrap(),
            Command::Hello {
                tenant: "acme".into()
            }
        );
        assert_eq!(
            parse_request(&json!({"cmd": "close", "tenant": "t", "spec": "s"})).unwrap(),
            Command::Close {
                tenant: "t".into(),
                spec: Some("s".into()),
                session: None,
            }
        );
        assert!(parse_request(&json!({"cmd": "close", "tenant": "t", "session": "x"})).is_err());
        assert!(parse_request(&json!({"cmd": "nope"})).is_err());
        assert!(parse_request(&json!([1u64])).is_err());
        assert!(
            parse_request(&json!({"cmd": "load-spec", "tenant": "t", "name": "n",
                                      "spec": "…", "view": "two"}))
            .is_err()
        );
    }

    #[test]
    fn event_line_accepts_objects_and_raw_lines() {
        let obj = json!({"session": "s", "state": "q", "regs": [1u64]});
        let line = event_line(&obj).unwrap();
        assert_eq!(line, serde_json::to_string(&obj).unwrap());
        assert_eq!(
            event_line(&Json::String("{\"session\":\"s\",\"end\":true}".into())).unwrap(),
            "{\"session\":\"s\",\"end\":true}"
        );
        assert!(event_line(&json!(42u64)).is_err());
    }
}
