//! The multi-tenant layer: namespaces, quotas, typed admission errors.
//!
//! A *tenant* is an isolation domain: it owns compiled specs, each spec
//! owns a running [`Engine`] and its open sessions, and everything the
//! tenant does is metered against its [`TenantQuotas`] and counted under
//! `serve.tenant.<name>.*` in one shared [`rega_obs::Registry`]. Admission
//! control is all-or-nothing and *typed*: a rejected request carries an
//! [`AdmissionError`] with a machine-readable `code`, never a bare string,
//! so clients can distinguish "you are over quota" (back off) from "no
//! such spec" (client bug) from "the server is draining" (reconnect
//! elsewhere).
//!
//! Quota semantics:
//!
//! * **tenants** — the registry admits at most `max_tenants` namespaces;
//!   `hello` for a fresh name past the cap is [`AdmissionError::TenantLimit`].
//! * **specs** — each tenant may hold at most `max_specs` compiled specs;
//!   compilation runs under the *tightening* of the server-wide
//!   [`BudgetSpec`] with the tenant's own
//!   ([`BudgetSpec::tightened`]), so a tenant can
//!   lower but never raise the global compile ceilings.
//! * **sessions** — at most `max_sessions` sessions open across the
//!   tenant's specs; a session must be opened before events for it are
//!   accepted, and its terminal event releases the slot.
//! * **quarantine** — the tenant's `quarantine_cap` becomes the engine's
//!   [`EngineConfig::quarantine_cap`], so transport-fault tolerance is a
//!   per-tenant policy too.

use crate::proto::event_line;
use rega_data::{Budget, BudgetSpec, GovernError};
use rega_obs::{Counter, Gauge, Registry, ScopedRegistry};
use rega_stream::{
    parse_event_checked, CompiledSpec, Engine, EngineConfig, EngineHandle, EngineReport, Event,
    EventError, SessionStatus, SubmitError,
};
use serde_json::{json, Value as Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Per-tenant resource ceilings.
#[derive(Clone, Debug)]
pub struct TenantQuotas {
    /// Compiled specs the tenant may hold at once.
    pub max_specs: usize,
    /// Sessions the tenant may have open at once, across all its specs.
    pub max_sessions: usize,
    /// Per-session quarantine budget for transport-faulty events
    /// (`0` = strict: a malformed step event violates its session).
    pub quarantine_cap: u64,
    /// Budget for the tenant's spec compilations. Applied as
    /// [`BudgetSpec::tightened`] against the
    /// server-wide ceiling, so it can only tighten, never loosen.
    pub budget: BudgetSpec,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_specs: 8,
            max_sessions: 1024,
            quarantine_cap: 0,
            budget: BudgetSpec::none(),
        }
    }
}

/// Why the tenant layer rejected a request. Every variant has a stable
/// machine-readable [`code`](AdmissionError::code) used in the wire
/// response's `error.code` field.
#[derive(Clone, Debug)]
pub enum AdmissionError {
    /// The server already holds its maximum number of tenants.
    TenantLimit {
        /// The server-wide tenant cap.
        max: usize,
    },
    /// The tenant already holds its maximum number of compiled specs.
    SpecLimit {
        /// The offending tenant.
        tenant: String,
        /// Its spec quota.
        max: usize,
    },
    /// The tenant already has its maximum number of sessions open.
    SessionLimit {
        /// The offending tenant.
        tenant: String,
        /// Its session quota.
        max: usize,
    },
    /// The request names a tenant that was never admitted with `hello`.
    UnknownTenant {
        /// The unknown name.
        tenant: String,
    },
    /// The request names a spec the tenant does not hold.
    UnknownSpec {
        /// The owning tenant.
        tenant: String,
        /// The unknown spec name.
        spec: String,
    },
    /// An event arrived for a session that was never opened (or whose
    /// terminal event already released it).
    UnknownSession {
        /// The session the event named.
        session: String,
    },
    /// The tenant already holds a spec under this name.
    DuplicateSpec {
        /// The owning tenant.
        tenant: String,
        /// The colliding name.
        spec: String,
    },
    /// The session is already open (double `open-session`).
    DuplicateSession {
        /// The colliding session id.
        session: String,
    },
    /// The spec text failed to parse or compile.
    SpecInvalid {
        /// The parser/compiler message.
        message: String,
    },
    /// Spec compilation tripped the (tightened) resource budget.
    Govern(GovernError),
    /// The server is draining and admits no new work.
    Draining,
}

impl AdmissionError {
    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            AdmissionError::TenantLimit { .. } => "tenant-limit",
            AdmissionError::SpecLimit { .. } => "spec-limit",
            AdmissionError::SessionLimit { .. } => "session-limit",
            AdmissionError::UnknownTenant { .. } => "unknown-tenant",
            AdmissionError::UnknownSpec { .. } => "unknown-spec",
            AdmissionError::UnknownSession { .. } => "unknown-session",
            AdmissionError::DuplicateSpec { .. } => "duplicate-spec",
            AdmissionError::DuplicateSession { .. } => "duplicate-session",
            AdmissionError::SpecInvalid { .. } => "spec-invalid",
            AdmissionError::Govern(_) => "resource-budget",
            AdmissionError::Draining => "draining",
        }
    }

    /// The wire-format error object: `{"code", "message", …detail}`.
    pub fn to_json(&self) -> Json {
        let code = self.code();
        let message = self.to_string();
        match self {
            AdmissionError::TenantLimit { max } => {
                json!({"code": code, "message": message, "max": *max})
            }
            AdmissionError::SpecLimit { tenant, max }
            | AdmissionError::SessionLimit { tenant, max } => json!({
                "code": code, "message": message,
                "tenant": tenant.as_str(), "max": *max,
            }),
            AdmissionError::UnknownTenant { tenant } => {
                json!({"code": code, "message": message, "tenant": tenant.as_str()})
            }
            AdmissionError::UnknownSpec { tenant, spec }
            | AdmissionError::DuplicateSpec { tenant, spec } => json!({
                "code": code, "message": message,
                "tenant": tenant.as_str(), "spec": spec.as_str(),
            }),
            AdmissionError::UnknownSession { session }
            | AdmissionError::DuplicateSession { session } => {
                json!({"code": code, "message": message, "session": session.as_str()})
            }
            AdmissionError::Govern(g) => json!({
                "code": code, "message": message,
                "kind": g.kind(),
                "phase": g.phase(),
                "nodes": g.nodes(),
                "elapsed_ms": g.elapsed_ms(),
            }),
            AdmissionError::SpecInvalid { .. } | AdmissionError::Draining => {
                json!({"code": code, "message": message})
            }
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::TenantLimit { max } => {
                write!(f, "the server already holds {max} tenants")
            }
            AdmissionError::SpecLimit { tenant, max } => {
                write!(f, "tenant `{tenant}` already holds {max} specs")
            }
            AdmissionError::SessionLimit { tenant, max } => {
                write!(f, "tenant `{tenant}` already has {max} sessions open")
            }
            AdmissionError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant `{tenant}` (send `hello` first)")
            }
            AdmissionError::UnknownSpec { tenant, spec } => {
                write!(f, "tenant `{tenant}` holds no spec `{spec}`")
            }
            AdmissionError::UnknownSession { session } => {
                write!(
                    f,
                    "session `{session}` is not open (send `open-session` first)"
                )
            }
            AdmissionError::DuplicateSpec { tenant, spec } => {
                write!(f, "tenant `{tenant}` already holds a spec named `{spec}`")
            }
            AdmissionError::DuplicateSession { session } => {
                write!(f, "session `{session}` is already open")
            }
            AdmissionError::SpecInvalid { message } => write!(f, "invalid spec: {message}"),
            AdmissionError::Govern(g) => write!(f, "compilation budget tripped: {g}"),
            AdmissionError::Draining => write!(f, "the server is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why one event in an `event` / `event-batch` request was rejected.
#[derive(Debug)]
pub enum IngestError {
    /// Admission control rejected it (unknown tenant/spec/session, drain).
    Admission(AdmissionError),
    /// The event document failed to parse or validate; `index` is its
    /// 0-based position in the batch.
    Event {
        /// Position in the request's event array.
        index: usize,
        /// The underlying parse/validation error.
        error: EventError,
    },
    /// The engine refused the submission (queue full past the timeout,
    /// dead workers).
    Submit(SubmitError),
}

impl IngestError {
    /// The wire-format error object.
    pub fn to_json(&self) -> Json {
        match self {
            IngestError::Admission(a) => a.to_json(),
            IngestError::Event { index, error } => json!({
                "code": "bad-event",
                "index": *index,
                "message": error.to_string(),
            }),
            IngestError::Submit(e) => json!({
                "code": "submit-failed",
                "message": e.to_string(),
            }),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Admission(a) => a.fmt(f),
            IngestError::Event { index, error } => write!(f, "event {index}: {error}"),
            IngestError::Submit(e) => write!(f, "submit failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<AdmissionError> for IngestError {
    fn from(a: AdmissionError) -> Self {
        IngestError::Admission(a)
    }
}

/// One compiled spec with its running engine.
struct SpecEntry {
    engine: Engine,
    /// The one long-lived handle; per-submission clones are transient, so
    /// dropping this (plus letting in-flight submits return) is what lets
    /// [`Engine::finish`] drain.
    handle: EngineHandle,
    registers: usize,
    /// Sessions currently open against this spec.
    sessions: BTreeSet<String>,
}

/// Per-tenant counters, registered as `serve.tenant.<name>.*`.
struct TenantMetrics {
    events_ingested: Counter,
    events_rejected: Counter,
    admission_rejected: Counter,
    specs_loaded: Counter,
    sessions_open: Gauge,
}

impl TenantMetrics {
    fn new(scope: &ScopedRegistry) -> Self {
        TenantMetrics {
            events_ingested: scope.counter("events.ingested"),
            events_rejected: scope.counter("events.rejected"),
            admission_rejected: scope.counter("admission.rejected"),
            specs_loaded: scope.counter("specs.loaded"),
            sessions_open: scope.gauge("sessions.open"),
        }
    }
}

/// One admitted tenant.
struct Tenant {
    name: String,
    quotas: TenantQuotas,
    metrics: TenantMetrics,
    specs: Mutex<BTreeMap<String, SpecEntry>>,
}

impl Tenant {
    fn open_sessions(&self) -> usize {
        let specs = self.specs.lock().unwrap();
        specs.values().map(|s| s.sessions.len()).sum()
    }
}

/// The tenant registry: admission control, per-tenant state, drain.
pub struct TenantRegistry {
    max_tenants: usize,
    default_quotas: TenantQuotas,
    /// The server-wide compile ceiling every tenant budget is tightened
    /// against.
    server_budget: BudgetSpec,
    /// Engine sizing shared by every spec's engine (the tenant's
    /// `quarantine_cap` overrides the template's).
    engine_template: EngineConfig,
    registry: Arc<Registry>,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    draining: AtomicBool,
}

impl TenantRegistry {
    /// A registry admitting at most `max_tenants` namespaces, compiling
    /// under `server_budget`, defaulting new tenants to `default_quotas`,
    /// and sizing engines from `engine_template`.
    pub fn new(
        max_tenants: usize,
        default_quotas: TenantQuotas,
        server_budget: BudgetSpec,
        engine_template: EngineConfig,
        registry: Arc<Registry>,
    ) -> Self {
        TenantRegistry {
            max_tenants,
            default_quotas,
            server_budget,
            engine_template,
            registry,
            tenants: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
        }
    }

    /// The shared metrics registry (server-wide snapshot source).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Flips the registry into draining mode: every admission request is
    /// rejected with [`AdmissionError::Draining`] from now on. Events for
    /// *already open* sessions are still accepted until their engines are
    /// finished, so in-flight work completes.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`start_draining`](TenantRegistry::start_draining) was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn check_not_draining(&self) -> Result<(), AdmissionError> {
        if self.is_draining() {
            Err(AdmissionError::Draining)
        } else {
            Ok(())
        }
    }

    fn get(&self, tenant: &str) -> Result<Arc<Tenant>, AdmissionError> {
        self.tenants
            .lock()
            .unwrap()
            .get(tenant)
            .cloned()
            .ok_or_else(|| AdmissionError::UnknownTenant {
                tenant: tenant.to_string(),
            })
    }

    /// Admits a tenant (idempotent: re-greeting an existing tenant
    /// succeeds). Returns whether the tenant is newly created.
    pub fn hello(&self, name: &str) -> Result<bool, AdmissionError> {
        self.check_not_draining()?;
        let mut tenants = self.tenants.lock().unwrap();
        if tenants.contains_key(name) {
            return Ok(false);
        }
        if tenants.len() >= self.max_tenants {
            return Err(AdmissionError::TenantLimit {
                max: self.max_tenants,
            });
        }
        let scope = ScopedRegistry::new(Arc::clone(&self.registry), &["serve", "tenant", name]);
        tenants.insert(
            name.to_string(),
            Arc::new(Tenant {
                name: name.to_string(),
                quotas: self.default_quotas.clone(),
                metrics: TenantMetrics::new(&scope),
                specs: Mutex::new(BTreeMap::new()),
            }),
        );
        Ok(true)
    }

    /// Compiles `spec_text` for `tenant` under the tightened budget and
    /// starts its engine. Counts against the tenant's spec quota.
    pub fn load_spec(
        &self,
        tenant: &str,
        name: &str,
        spec_text: &str,
        view: Option<u16>,
    ) -> Result<usize, AdmissionError> {
        self.check_not_draining()?;
        let t = self.get(tenant)?;
        // Quota and duplicate checks up front — but compile *outside* the
        // spec lock, so one tenant's slow compilation never blocks another
        // connection's ingest for the same tenant.
        {
            let specs = t.specs.lock().unwrap();
            if specs.contains_key(name) {
                t.metrics.admission_rejected.inc();
                return Err(AdmissionError::DuplicateSpec {
                    tenant: tenant.to_string(),
                    spec: name.to_string(),
                });
            }
            if specs.len() >= t.quotas.max_specs {
                t.metrics.admission_rejected.inc();
                return Err(AdmissionError::SpecLimit {
                    tenant: tenant.to_string(),
                    max: t.quotas.max_specs,
                });
            }
        }
        let ext = rega_core::spec::parse_spec(spec_text).map_err(|e| {
            t.metrics.admission_rejected.inc();
            AdmissionError::SpecInvalid {
                message: e.to_string(),
            }
        })?;
        let db = rega_data::Database::new(ext.ra().schema().clone());
        let effective = self.server_budget.tightened(&t.quotas.budget);
        let budget = Budget::start(&effective);
        let compiled = match CompiledSpec::compile_governed(ext, db, view, &budget) {
            Ok(c) => c,
            Err(rega_core::CoreError::Govern(g)) => {
                t.metrics.admission_rejected.inc();
                return Err(AdmissionError::Govern(g));
            }
            Err(e) => {
                t.metrics.admission_rejected.inc();
                return Err(AdmissionError::SpecInvalid {
                    message: e.to_string(),
                });
            }
        };
        let registers = compiled.registers();
        let mut config = self.engine_template.clone();
        config.quarantine_cap = t.quotas.quarantine_cap;
        let engine = Engine::start(Arc::new(compiled), config);
        let handle = engine
            .handle()
            .expect("the threaded scheduler always offers a handle");
        let mut specs = t.specs.lock().unwrap();
        // Re-check under the lock: a racing load-spec may have taken the
        // name or the last quota slot while we compiled.
        if specs.contains_key(name) {
            t.metrics.admission_rejected.inc();
            return Err(AdmissionError::DuplicateSpec {
                tenant: tenant.to_string(),
                spec: name.to_string(),
            });
        }
        if specs.len() >= t.quotas.max_specs {
            t.metrics.admission_rejected.inc();
            return Err(AdmissionError::SpecLimit {
                tenant: tenant.to_string(),
                max: t.quotas.max_specs,
            });
        }
        specs.insert(
            name.to_string(),
            SpecEntry {
                engine,
                handle,
                registers,
                sessions: BTreeSet::new(),
            },
        );
        t.metrics.specs_loaded.inc();
        Ok(registers)
    }

    /// Opens a session against `spec`, admitted against the tenant's
    /// session quota.
    pub fn open_session(
        &self,
        tenant: &str,
        spec: &str,
        session: &str,
    ) -> Result<(), AdmissionError> {
        self.check_not_draining()?;
        let t = self.get(tenant)?;
        let open = t.open_sessions();
        let mut specs = t.specs.lock().unwrap();
        let entry = specs
            .get_mut(spec)
            .ok_or_else(|| AdmissionError::UnknownSpec {
                tenant: tenant.to_string(),
                spec: spec.to_string(),
            })
            .inspect_err(|_| {
                t.metrics.admission_rejected.inc();
            })?;
        if entry.sessions.contains(session) {
            t.metrics.admission_rejected.inc();
            return Err(AdmissionError::DuplicateSession {
                session: session.to_string(),
            });
        }
        if open >= t.quotas.max_sessions {
            t.metrics.admission_rejected.inc();
            return Err(AdmissionError::SessionLimit {
                tenant: tenant.to_string(),
                max: t.quotas.max_sessions,
            });
        }
        entry.sessions.insert(session.to_string());
        t.metrics.sessions_open.inc();
        Ok(())
    }

    /// Ingests one batch of event documents for `(tenant, spec)`. Events
    /// are validated exactly as the batch monitor validates its JSONL
    /// lines (same parser, same arity check), must name an *open* session,
    /// and are submitted through the engine's concurrent-ingest handle.
    /// Processing stops at the first error; the return value counts the
    /// events accepted before it.
    pub fn ingest(
        &self,
        tenant: &str,
        spec: &str,
        events: &[Json],
    ) -> Result<u64, (u64, IngestError)> {
        let t = self.get(tenant).map_err(|e| (0, IngestError::from(e)))?;
        // Clone the handle out of the lock: submission may back-pressure,
        // and stalling inside the spec map lock would couple every
        // connection of the tenant to this one's flow control.
        let (handle, registers) = {
            let specs = t.specs.lock().unwrap();
            let entry = specs.get(spec).ok_or_else(|| {
                t.metrics.admission_rejected.inc();
                (
                    0,
                    IngestError::from(AdmissionError::UnknownSpec {
                        tenant: tenant.to_string(),
                        spec: spec.to_string(),
                    }),
                )
            })?;
            (entry.handle.clone(), entry.registers)
        };
        let mut accepted = 0u64;
        for (index, doc) in events.iter().enumerate() {
            let fail = move |e: IngestError| (accepted, e);
            let line = event_line(doc).map_err(|message| {
                t.metrics.events_rejected.inc();
                fail(IngestError::Event {
                    index,
                    error: EventError::Json(message),
                })
            })?;
            let event = parse_event_checked(&line, registers).map_err(|error| {
                t.metrics.events_rejected.inc();
                fail(IngestError::Event { index, error })
            })?;
            // Only open sessions may carry traffic; a terminal event
            // releases the quota slot.
            let is_end = matches!(event, Event::End { .. });
            {
                let mut specs = t.specs.lock().unwrap();
                let Some(entry) = specs.get_mut(spec) else {
                    t.metrics.events_rejected.inc();
                    return Err(fail(IngestError::from(AdmissionError::UnknownSpec {
                        tenant: tenant.to_string(),
                        spec: spec.to_string(),
                    })));
                };
                if !entry.sessions.contains(event.session()) {
                    t.metrics.events_rejected.inc();
                    t.metrics.admission_rejected.inc();
                    return Err(fail(IngestError::from(AdmissionError::UnknownSession {
                        session: event.session().to_string(),
                    })));
                }
                if is_end {
                    entry.sessions.remove(event.session());
                    t.metrics.sessions_open.dec();
                }
            }
            handle.submit(event).map_err(|e| {
                t.metrics.events_rejected.inc();
                fail(IngestError::Submit(e))
            })?;
            accepted += 1;
            t.metrics.events_ingested.inc();
        }
        Ok(accepted)
    }

    /// A live snapshot of one tenant: its specs, open sessions, and the
    /// `serve.tenant.<name>.*` slice of the metrics registry.
    pub fn snapshot(&self, tenant: &str) -> Result<Json, AdmissionError> {
        let t = self.get(tenant)?;
        let specs = t.specs.lock().unwrap();
        let spec_list: Vec<Json> = specs
            .iter()
            .map(|(name, entry)| {
                json!({
                    "spec": name.as_str(),
                    "registers": entry.registers,
                    "open_sessions": entry.sessions.iter().cloned().collect::<Vec<_>>(),
                    "engine": entry.engine.metrics().snapshot(),
                })
            })
            .collect();
        drop(specs);
        let prefix = ScopedRegistry::new(Arc::clone(&self.registry), &["serve", "tenant", tenant])
            .prefix()
            .to_string();
        let all = self.registry.snapshot();
        let mut mine = BTreeMap::new();
        if let Some(map) = all.as_object() {
            for (name, value) in map {
                if name.starts_with(&format!("{prefix}.")) {
                    mine.insert(name.clone(), value.clone());
                }
            }
        }
        Ok(json!({
            "tenant": t.name.as_str(),
            "specs": Json::Array(spec_list),
            "metrics": Json::Object(mine),
        }))
    }

    /// Closes one session: its terminal event is submitted (so the engine
    /// reports it `Ended`, exactly as a terminal JSONL event would) and
    /// its quota slot is released.
    pub fn close_session(
        &self,
        tenant: &str,
        spec: &str,
        session: &str,
    ) -> Result<(), IngestError> {
        let end = json!({"session": session, "end": true});
        self.ingest(tenant, spec, &[end])
            .map(|_| ())
            .map_err(|(_, e)| e)
    }

    /// Closes one spec: the engine is drained through `Engine::finish`
    /// (every queued event is processed) and the final report returned,
    /// with violations shaped exactly like the batch monitor's summary
    /// entries.
    pub fn close_spec(&self, tenant: &str, spec: &str) -> Result<Json, AdmissionError> {
        let t = self.get(tenant)?;
        let entry = {
            let mut specs = t.specs.lock().unwrap();
            specs
                .remove(spec)
                .ok_or_else(|| AdmissionError::UnknownSpec {
                    tenant: tenant.to_string(),
                    spec: spec.to_string(),
                })?
        };
        for _ in &entry.sessions {
            t.metrics.sessions_open.dec();
        }
        let SpecEntry { engine, handle, .. } = entry;
        // The long-lived handle must go before `finish` can drain: a
        // surviving clone keeps the shard queues connected.
        drop(handle);
        let report = engine.finish();
        Ok(report_json(spec, &report))
    }

    /// Closes a whole tenant: every spec is drained and the namespace
    /// removed. Returns one report per spec.
    pub fn close_tenant(&self, tenant: &str) -> Result<Json, AdmissionError> {
        // Remove the tenant from the registry first so no new work can
        // race the drain; ingest against it now reports UnknownTenant.
        let t = {
            let mut tenants = self.tenants.lock().unwrap();
            tenants
                .remove(tenant)
                .ok_or_else(|| AdmissionError::UnknownTenant {
                    tenant: tenant.to_string(),
                })?
        };
        let specs: Vec<(String, SpecEntry)> = {
            let mut map = t.specs.lock().unwrap();
            std::mem::take(&mut *map).into_iter().collect()
        };
        let mut reports = Vec::new();
        for (name, entry) in specs {
            for _ in &entry.sessions {
                t.metrics.sessions_open.dec();
            }
            let SpecEntry { engine, handle, .. } = entry;
            drop(handle);
            let report = engine.finish();
            reports.push(report_json(&name, &report));
        }
        Ok(json!({"tenant": t.name.as_str(), "specs": Json::Array(reports)}))
    }

    /// Drains everything: every tenant's every engine is finished and the
    /// combined final report returned. Used by the server's graceful
    /// shutdown after [`start_draining`](TenantRegistry::start_draining).
    pub fn drain_all(&self) -> Json {
        let names: Vec<String> = self.tenants.lock().unwrap().keys().cloned().collect();
        let mut reports = Vec::new();
        for name in names {
            if let Ok(report) = self.close_tenant(&name) {
                reports.push(report);
            }
        }
        json!({"tenants": Json::Array(reports)})
    }

    /// Server-wide stats: tenant count, per-tenant open sessions and spec
    /// counts, and the full metrics registry snapshot.
    pub fn stats(&self) -> Json {
        let tenants = self.tenants.lock().unwrap();
        let per_tenant: Vec<Json> = tenants
            .values()
            .map(|t| {
                let specs = t.specs.lock().unwrap();
                json!({
                    "tenant": t.name.as_str(),
                    "specs": specs.len(),
                    "open_sessions": specs.values().map(|s| s.sessions.len()).sum::<usize>(),
                })
            })
            .collect();
        json!({
            "tenants": Json::Array(per_tenant),
            "draining": self.is_draining(),
            "metrics": self.registry.snapshot(),
        })
    }
}

/// Renders an [`EngineReport`] in the batch monitor's summary shape: the
/// `violations` entries are field-for-field identical to `rega monitor`'s
/// (`{"session","reason","events"}`), which is what the loopback
/// differential test compares byte-for-byte.
fn report_json(spec: &str, report: &EngineReport) -> Json {
    let mut violations = Vec::new();
    for outcome in report.violations() {
        if let SessionStatus::Violated(kind) = &outcome.status {
            violations.push(json!({
                "session": outcome.session.as_str(),
                "reason": kind.to_string(),
                "events": outcome.events,
            }));
        }
    }
    let outcomes: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| {
            json!({
                "session": o.session.as_str(),
                "status": status_str(&o.status),
                "events": o.events,
                "quarantined": o.quarantined,
            })
        })
        .collect();
    json!({
        "spec": spec,
        "sessions": report.outcomes.len(),
        "violations": Json::Array(violations),
        "outcomes": Json::Array(outcomes),
        "quarantined": report.metrics.events_quarantined.get(),
        "worker_panics": report.metrics.worker_panics.get(),
    })
}

fn status_str(status: &SessionStatus) -> &'static str {
    match status {
        SessionStatus::Active => "active",
        SessionStatus::Ended => "ended",
        SessionStatus::Violated(_) => "violated",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_text() -> &'static str {
        "registers 1\nstate p init accept\ntrans p -> p : x1 = x1\n"
    }

    fn registry() -> TenantRegistry {
        TenantRegistry::new(
            2,
            TenantQuotas {
                max_specs: 2,
                max_sessions: 3,
                quarantine_cap: 0,
                budget: BudgetSpec::none(),
            },
            BudgetSpec::none(),
            EngineConfig {
                shards: 2,
                workers: 2,
                queue_capacity: 64,
                ..EngineConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn quotas_are_enforced_with_typed_errors() {
        let reg = registry();
        assert!(reg.hello("a").unwrap());
        assert!(!reg.hello("a").unwrap(), "hello is idempotent");
        assert!(reg.hello("b").unwrap());
        // Third tenant: over the server cap.
        match reg.hello("c") {
            Err(AdmissionError::TenantLimit { max: 2 }) => {}
            other => panic!("expected TenantLimit, got {other:?}"),
        }

        reg.load_spec("a", "s1", spec_text(), None).unwrap();
        reg.load_spec("a", "s2", spec_text(), None).unwrap();
        match reg.load_spec("a", "s3", spec_text(), None) {
            Err(AdmissionError::SpecLimit { max: 2, .. }) => {}
            other => panic!("expected SpecLimit, got {other:?}"),
        }
        match reg.load_spec("a", "s1", spec_text(), None) {
            Err(AdmissionError::DuplicateSpec { .. }) => {}
            other => panic!("expected DuplicateSpec, got {other:?}"),
        }

        for i in 0..3 {
            reg.open_session("a", "s1", &format!("sess-{i}")).unwrap();
        }
        match reg.open_session("a", "s2", "sess-3") {
            Err(AdmissionError::SessionLimit { max: 3, .. }) => {}
            other => panic!("expected SessionLimit, got {other:?}"),
        }
        // Closing a session releases its slot.
        reg.close_session("a", "s1", "sess-0").unwrap();
        reg.open_session("a", "s2", "sess-3").unwrap();

        // Events for never-opened sessions are rejected, not auto-created.
        let stray = json!({"session": "ghost", "state": "p", "regs": [1u64]});
        match reg.ingest("a", "s1", &[stray]) {
            Err((0, IngestError::Admission(AdmissionError::UnknownSession { .. }))) => {}
            other => panic!("expected UnknownSession, got {other:?}"),
        }
        let reports = reg.close_tenant("a").unwrap();
        assert_eq!(reports["specs"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn draining_rejects_admission_but_reports_typed() {
        let reg = registry();
        reg.hello("a").unwrap();
        reg.load_spec("a", "s", spec_text(), None).unwrap();
        reg.open_session("a", "s", "x").unwrap();
        reg.start_draining();
        match reg.hello("late") {
            Err(AdmissionError::Draining) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        assert_eq!(reg.hello("late").unwrap_err().code(), "draining");
        // Traffic for the already-open session still flows during drain.
        let ev = json!({"session": "x", "state": "p", "regs": [7u64]});
        assert_eq!(reg.ingest("a", "s", &[ev]).unwrap(), 1);
        let report = reg.drain_all();
        let tenants = report["tenants"].as_array().unwrap();
        assert_eq!(tenants.len(), 1);
        let outcomes = tenants[0]["specs"][0]["outcomes"].as_array().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0]["session"], json!("x"));
    }

    #[test]
    fn budget_tightening_rejects_expensive_compiles() {
        let reg = TenantRegistry::new(
            4,
            TenantQuotas {
                budget: BudgetSpec {
                    max_nodes: Some(1),
                    ..BudgetSpec::none()
                },
                ..TenantQuotas::default()
            },
            BudgetSpec::none(),
            EngineConfig::default(),
            Arc::new(Registry::new()),
        );
        reg.hello("tight").unwrap();
        // With a view requested, compilation runs the (governed)
        // projection construction, which trips a 1-node ceiling.
        let err = reg
            .load_spec("tight", "s", spec_text(), Some(1))
            .unwrap_err();
        assert_eq!(err.code(), "resource-budget", "got {err:?}");
        // Without the tenant quota the same compile succeeds.
        let loose = registry();
        loose.hello("a").unwrap();
        loose.load_spec("a", "s", spec_text(), Some(1)).unwrap();
    }
}
