//! Differential tests of the σ-type interning / satisfiability cache
//! ([`rega_data::SatCache`]) against the direct, clone-based operations on
//! [`SigmaType`]: for every generated type (satisfiable or not, complete
//! or not, with and without relational literals) the cached result must
//! equal the freshly computed one — on first access (a miss) and on
//! repeat access (a hit served from the memo tables).

use proptest::prelude::*;
use rega_data::{Literal, SatCache, Schema, SigmaType, Term};

fn schema_with_relations() -> Schema {
    let mut schema = Schema::empty();
    schema.add_relation("P", 1).unwrap();
    schema.add_relation("R", 2).unwrap();
    schema
}

const K: u16 = 2;

fn term_strategy() -> impl Strategy<Value = Term> {
    (0..K, prop::bool::ANY).prop_map(|(i, x)| if x { Term::x(i) } else { Term::y(i) })
}

fn literal_strategy(schema: &Schema) -> impl Strategy<Value = Literal> {
    let p = schema.relation("P").unwrap();
    let r = schema.relation("R").unwrap();
    prop_oneof![
        (term_strategy(), term_strategy()).prop_map(|(s, t)| Literal::eq(s, t)),
        (term_strategy(), term_strategy()).prop_map(|(s, t)| Literal::neq(s, t)),
        term_strategy().prop_map(move |t| Literal::rel(p, vec![t])),
        term_strategy().prop_map(move |t| Literal::rel(p, vec![t]).negated()),
        (term_strategy(), term_strategy()).prop_map(move |(s, t)| Literal::rel(r, vec![s, t])),
        (term_strategy(), term_strategy())
            .prop_map(move |(s, t)| Literal::rel(r, vec![s, t]).negated()),
    ]
}

fn type_strategy(schema: &Schema) -> impl Strategy<Value = SigmaType> {
    // 0..6 literals: includes the empty (maximally incomplete) type, and
    // duplicates like `P(x1); P(x1)` arise naturally from the collection.
    prop::collection::vec(literal_strategy(schema), 0..6).prop_map(|lits| SigmaType::new(K, lits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The tentpole's correctness contract: interned-path results equal
    // direct-path results for every cached operation, both on the miss
    // and on the memoized hit.
    #[test]
    fn cached_operations_agree_with_direct(
        a in type_strategy(&schema_with_relations()),
        b in type_strategy(&schema_with_relations()),
    ) {
        let schema = schema_with_relations();
        let cache = SatCache::new(schema.clone());

        // Each op twice: first populates the memo, second must hit it.
        for _ in 0..2 {
            // Consistency (satisfiability of the analyzed type).
            prop_assert_eq!(cache.is_consistent(&a), a.analyze(&schema).is_ok());
            prop_assert_eq!(cache.is_consistent(&b), b.analyze(&schema).is_ok());

            // Saturation, on satisfiable types.
            match (cache.saturate(&a), a.saturate(&schema)) {
                (Ok(cached), Ok(direct)) => prop_assert_eq!(&*cached, &direct),
                (Err(_), Err(_)) => {}
                (c, d) => prop_assert!(false, "saturate disagrees: {:?} vs {:?}", c, d),
            }

            // Joint satisfiability of consecutive types — including the
            // incomplete ones the ad-hoc `joint_sat` maps used to handle.
            prop_assert_eq!(
                cache.jointly_satisfiable(&a, &b),
                a.jointly_satisfiable_with(&b, &schema)
            );
            prop_assert_eq!(
                cache.jointly_satisfiable(&b, &a),
                b.jointly_satisfiable_with(&a, &schema)
            );

            // Register restriction (the Prop 20 / Thm 13 workhorse).
            for m in 0..=K {
                match (cache.restrict_registers(&a, m), a.restrict_registers(&schema, m)) {
                    (Ok(cached), Ok(direct)) => prop_assert_eq!(&*cached, &direct),
                    (Err(_), Err(_)) => {}
                    (c, d) => prop_assert!(false, "restrict disagrees: {:?} vs {:?}", c, d),
                }
            }

            // Pre/post projections feeding `agrees_with`.
            match (cache.agrees_with(&a, &b), a.agrees_with(&b, &schema)) {
                (Ok(cached), Ok(direct)) => prop_assert_eq!(cached, direct),
                (Err(_), Err(_)) => {}
                (c, d) => prop_assert!(false, "agrees_with disagrees: {:?} vs {:?}", c, d),
            }
        }

        // The second pass must have been served from the memo tables.
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "repeat lookups recorded no hits: {:?}", stats);
    }
}

/// The pinned incomplete-type case from the issue: `P(x1); P(x1)` (a
/// duplicated positive literal, far from complete) must flow through the
/// cache exactly like the direct path, alone and jointly.
#[test]
fn incomplete_duplicate_literal_type() {
    let schema = schema_with_relations();
    let p = schema.relation("P").unwrap();
    let ty = SigmaType::new(
        K,
        [
            Literal::rel(p, vec![Term::x(0)]),
            Literal::rel(p, vec![Term::x(0)]),
        ],
    );
    let contradictory = ty.with(Literal::rel(p, vec![Term::x(0)]).negated());
    let cache = SatCache::new(schema.clone());

    assert!(cache.is_consistent(&ty));
    assert!(!cache.is_consistent(&contradictory));
    assert_eq!(
        &*cache.saturate(&ty).unwrap(),
        &ty.saturate(&schema).unwrap()
    );
    assert_eq!(
        cache.jointly_satisfiable(&ty, &ty),
        ty.jointly_satisfiable_with(&ty, &schema)
    );
    assert_eq!(
        cache.jointly_satisfiable(&ty, &contradictory),
        ty.jointly_satisfiable_with(&contradictory, &schema)
    );
    // Interning collapses the duplicate-literal type and its saturation
    // chain into stable ids: repeating every query above only adds hits.
    let before = cache.stats();
    assert!(cache.is_consistent(&ty));
    let _ = cache.saturate(&ty);
    let after = cache.stats();
    assert_eq!(before.misses, after.misses);
    assert!(after.hits > before.hits);
}
