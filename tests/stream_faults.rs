//! Seeded fault-injection simulation tests for the streaming engine.
//!
//! Every test case derives *everything* — the multi-session workload, the
//! fault plan, the crash point, even the restored engine's shard count —
//! from one `u64` seed via the deterministic [`SimScheduler`] behind
//! [`Engine::start_sim`]. The invariants checked per seed:
//!
//! 1. **Crash/restart transparency**: a run that checkpoints mid-stream,
//!    throws the engine away, and restores from the snapshot reaches the
//!    same per-session verdicts as an uninterrupted run — which in turn
//!    equals a fault-free batch reference walked with `rega_core`
//!    primitives only.
//! 2. **Quarantine isolation**: injected transport faults (corrupt copies,
//!    duplicated terminal events) never change any session's verdict in
//!    lenient mode, including sessions the faults did not target.
//! 3. **Bit-for-bit reproducibility**: the same seed yields identical
//!    outcome sets, quarantine counts, and metrics snapshots on every run.
//!
//! A failing random case panics with its seed in the message; add it to
//! `PINNED_SEEDS` to turn it into a named regression test.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rega_core::monitor::ConstraintMonitor;
use rega_core::spec::parse_spec;
use rega_core::ExtendedAutomaton;
use rega_data::{Database, Schema, Value};
use rega_stream::{
    parse_event, parse_event_checked, CompiledSpec, Engine, EngineConfig, Event, FaultPlan,
    SessionStatus, SnapshotError, SubmitError,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The monitored specification (same shape as `stream_differential`):
/// two registers, nondeterministic control, a σ-type restriction, and a
/// global equality constraint, so monitor state genuinely participates.
fn spec_text() -> &'static str {
    "\
registers 2
state p init accept
state q accept
trans p -> p : x1 = y1
trans p -> q :
trans q -> p :
trans q -> q : x2 != y2
constraint eq 1 1 : p p p
"
}

fn compile(view: Option<u16>) -> Arc<CompiledSpec> {
    let ext = parse_spec(spec_text()).unwrap();
    let db = Database::new(Schema::empty());
    Arc::new(CompiledSpec::compile(ext, db, view).unwrap())
}

/// The same control structure without the global constraint, so the
/// projection view compiles via the polynomial Proposition-20 path (the
/// Theorem-13 equality-elimination pipeline is exponential in the register
/// count and not meant for per-test compilation).
fn compile_view_spec() -> Arc<CompiledSpec> {
    let text = "\
registers 2
state p init accept
state q accept
trans p -> p : x1 = y1
trans p -> q :
trans q -> p :
trans q -> q : x2 != y2
";
    let ext = parse_spec(text).unwrap();
    let db = Database::new(Schema::empty());
    Arc::new(CompiledSpec::compile(ext, db, Some(1)).unwrap())
}

/// Coarse per-session verdict used for cross-run comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Active,
    Ended,
    Violated,
}

fn coarse(status: &SessionStatus) -> Verdict {
    match status {
        SessionStatus::Active => Verdict::Active,
        SessionStatus::Ended => Verdict::Ended,
        SessionStatus::Violated(_) => Verdict::Violated,
    }
}

/// The fault-free batch reference: walk one session's events in order with
/// `rega_core` primitives only (no engine code).
fn batch_verdict(ext: &ExtendedAutomaton, db: &Database, events: &[Event]) -> Verdict {
    let ra = ext.ra();
    let mut monitor = ConstraintMonitor::new(ext);
    let mut cur: Option<(rega_core::StateId, Vec<Value>)> = None;
    for ev in events {
        match ev {
            Event::End { .. } => return Verdict::Ended,
            Event::Step { state, regs, .. } => {
                let Some(sid) = ra.state_by_name(state) else {
                    return Verdict::Violated;
                };
                let ok = match &cur {
                    None => ra.initial_states().any(|s| s == sid),
                    Some((from, pre)) => ra.outgoing(*from).iter().any(|&t| {
                        let tr = ra.transition(t);
                        tr.to == sid && tr.ty.satisfied_by(db, pre, regs)
                    }),
                };
                if !ok || monitor.step(ext, sid, regs).is_some() {
                    return Verdict::Violated;
                }
                cur = Some((sid, regs.clone()));
            }
        }
    }
    Verdict::Active
}

/// A seeded workload: an interleaved multi-session stream. Mostly-legal
/// traces with occasional genuine violations, so verdicts vary.
fn gen_stream(rng: &mut StdRng) -> Vec<Event> {
    let sessions = rng.gen_range(2usize..8);
    let mut per_session: Vec<Vec<Event>> = Vec::new();
    for s in 0..sessions {
        let name = format!("s{s}");
        let steps = rng.gen_range(1usize..10);
        let mut events = Vec::new();
        for _ in 0..steps {
            let state = if rng.gen_bool(0.7) { "p" } else { "q" };
            events.push(Event::Step {
                session: name.clone(),
                state: state.to_string(),
                regs: vec![Value(rng.gen_range(0u64..3)), Value(rng.gen_range(0u64..3))],
            });
        }
        if rng.gen_bool(0.6) {
            events.push(Event::End {
                session: name.clone(),
            });
        }
        per_session.push(events);
    }
    // Random interleaving preserving per-session order.
    let mut stream = Vec::new();
    loop {
        let nonempty: Vec<usize> = (0..per_session.len())
            .filter(|&i| !per_session[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            break;
        }
        let pick = nonempty[rng.gen_range(0..nonempty.len())];
        stream.push(per_session[pick].remove(0));
    }
    stream
}

/// A seeded fault plan. Quarantine-relevant faults need lenient mode; the
/// cap is set high enough that no session overflows, so verdicts stay
/// comparable to the fault-free reference.
fn gen_plan(rng: &mut StdRng, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        panic_prob: if rng.gen_bool(0.5) {
            rng.gen_range(0u64..30) as f64 / 100.0
        } else {
            0.0
        },
        max_respawns: u64::MAX,
        stall_prob: rng.gen_range(0u64..20) as f64 / 100.0,
        stall_ns: rng.gen_range(0u64..10_000),
        corrupt_prob: rng.gen_range(0u64..40) as f64 / 100.0,
        dup_end_prob: rng.gen_range(0u64..40) as f64 / 100.0,
    }
}

fn gen_config(rng: &mut StdRng, plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        shards: rng.gen_range(1usize..6),
        workers: 1,
        queue_capacity: rng.gen_range(2usize..32),
        max_view_frontier: 16,
        quarantine_cap: 1_000_000, // lenient, never overflows
        submit_timeout: None,
        fault: plan,
    }
}

/// Per-session verdict map of a finished engine report.
fn verdicts(report: &rega_stream::EngineReport) -> BTreeMap<String, Verdict> {
    report
        .outcomes
        .iter()
        .map(|o| (o.session.clone(), coarse(&o.status)))
        .collect()
}

/// One full differential case for `seed`. Returns an error message (which
/// embeds the seed) instead of panicking so proptest and the pinned tests
/// share it.
fn run_case(seed: u64) -> Result<(), String> {
    let fail = |msg: String| Err(format!("[seed {seed:#x}] {msg}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = compile(None);
    let stream = gen_stream(&mut rng);
    let plan = gen_plan(&mut rng, seed);
    let config = gen_config(&mut rng, plan);

    // Fault-free batch reference, per session in isolation.
    let ext = parse_spec(spec_text()).unwrap();
    let db = Database::new(Schema::empty());
    let mut per_session: BTreeMap<String, Vec<Event>> = BTreeMap::new();
    for ev in &stream {
        per_session
            .entry(ev.session().to_string())
            .or_default()
            .push(ev.clone());
    }
    let expected: BTreeMap<String, Verdict> = per_session
        .iter()
        .map(|(name, evs)| (name.clone(), batch_verdict(&ext, &db, evs)))
        .collect();

    // Uninterrupted simulated run under the fault plan.
    let mut engine = Engine::start_sim(Arc::clone(&spec), config.clone(), seed);
    for ev in &stream {
        engine
            .submit(ev.clone())
            .map_err(|e| format!("[seed {seed:#x}] uninterrupted submit failed: {e}"))?;
    }
    let uninterrupted = engine.finish();
    let got = verdicts(&uninterrupted);
    if got != expected {
        return fail(format!(
            "uninterrupted verdicts diverge from batch reference:\n got {got:?}\nwant {expected:?}"
        ));
    }

    // Crash/restart run: same seed, checkpoint mid-stream, restore into a
    // (possibly differently-sharded) engine, replay the rest.
    let crash_at = rng.gen_range(0..stream.len() + 1);
    let mut first = Engine::start_sim(Arc::clone(&spec), config.clone(), seed);
    for ev in &stream[..crash_at] {
        first
            .submit(ev.clone())
            .map_err(|e| format!("[seed {seed:#x}] pre-crash submit failed: {e}"))?;
    }
    let snapshot = first
        .checkpoint()
        .ok_or_else(|| format!("[seed {seed:#x}] sim checkpoint must exist"))?;
    drop(first); // the crash

    // Serialize through text, as a real restart would.
    let text = serde_json::to_string(&snapshot)
        .map_err(|e| format!("[seed {seed:#x}] snapshot serialize: {e}"))?;
    let snapshot = serde_json::from_str(&text)
        .map_err(|e| format!("[seed {seed:#x}] snapshot reparse: {e}"))?;
    let mut restore_config = config.clone();
    restore_config.shards = rng.gen_range(1usize..6); // re-route by hash
    let mut second =
        Engine::restore_sim(Arc::clone(&spec), restore_config, seed ^ 0xABCD, &snapshot)
            .map_err(|e| format!("[seed {seed:#x}] restore failed: {e}"))?;
    for ev in &stream[crash_at..] {
        second
            .submit(ev.clone())
            .map_err(|e| format!("[seed {seed:#x}] post-restore submit failed: {e}"))?;
    }
    let restarted = verdicts(&second.finish());
    if restarted != expected {
        return fail(format!(
            "crash/restart verdicts diverge (crash at event {crash_at}/{}):\n got {restarted:?}\nwant {expected:?}",
            stream.len()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Random fault plans (satellite 1): 256 seeded cases; a failure prints
// the seed to pin below.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_fault_plans_preserve_verdicts(seed in 0u64..u64::MAX) {
        if let Err(msg) = run_case(seed) {
            panic!("{msg}");
        }
    }
}

// Pinned regression seeds: previously-explored cases kept as fixed tests.
const PINNED_SEEDS: [u64; 4] = [0x0, 0xDEAD_BEEF, 0x5EED_CAFE_F00D, 0x0123_4567_89AB_CDEF];

#[test]
fn pinned_seed_zero() {
    run_case(PINNED_SEEDS[0]).unwrap();
}

#[test]
fn pinned_seed_deadbeef() {
    run_case(PINNED_SEEDS[1]).unwrap();
}

#[test]
fn pinned_seed_seedcafe() {
    run_case(PINNED_SEEDS[2]).unwrap();
}

#[test]
fn pinned_seed_counting() {
    run_case(PINNED_SEEDS[3]).unwrap();
}

/// CI's randomized round: `REGA_SIM_SEED` (or `RANDOM_SEED`) picks the
/// case; a failure prints the seed for pinning.
#[test]
fn random_seed_round_from_env() {
    let seed = std::env::var("REGA_SIM_SEED")
        .or_else(|_| std::env::var("RANDOM_SEED"))
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0x5EED);
    run_case(seed)
        .unwrap_or_else(|msg| panic!("random round failed — pin this seed in PINNED_SEEDS: {msg}"));
}

// ---------------------------------------------------------------------
// Quarantine isolation (satellite 1b): faults targeting one session never
// change another session's verdict.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quarantined_events_do_not_leak_across_sessions(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = compile(None);
        let stream = gen_stream(&mut rng);

        // Clean run: no faults at all.
        let clean_config = EngineConfig {
            shards: 4,
            workers: 1,
            quarantine_cap: 1_000_000,
            ..EngineConfig::default()
        };
        let mut clean = Engine::start_sim(Arc::clone(&spec), clean_config.clone(), seed);
        for ev in &stream {
            clean.submit(ev.clone()).unwrap();
        }
        let clean_verdicts = verdicts(&clean.finish());

        // Faulty run: aggressive transport corruption against every
        // submission.
        let mut faulty_config = clean_config;
        faulty_config.fault = FaultPlan {
            seed,
            corrupt_prob: 0.8,
            dup_end_prob: 0.8,
            ..FaultPlan::none()
        };
        let mut faulty = Engine::start_sim(Arc::clone(&spec), faulty_config, seed);
        for ev in &stream {
            faulty.submit(ev.clone()).unwrap();
        }
        let report = faulty.finish();
        let quarantined = report.metrics.events_quarantined.get();
        prop_assert_eq!(
            verdicts(&report),
            clean_verdicts,
            "[seed {:#x}] transport faults leaked into verdicts ({} quarantined)",
            seed,
            quarantined
        );
    }
}

// ---------------------------------------------------------------------
// Reproducibility: same seed → bit-for-bit identical runs (CI asserts
// this across 5 runs).
// ---------------------------------------------------------------------

#[test]
fn same_seed_replays_bit_for_bit() {
    let seed = 0x7E57u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = compile(None);
    let stream = gen_stream(&mut rng);
    let plan = gen_plan(&mut rng, seed);
    let config = gen_config(&mut rng, plan);

    let mut outcome_sets = Vec::new();
    let mut metric_snapshots = Vec::new();
    let mut quarantine_counts = Vec::new();
    for _ in 0..5 {
        let mut engine = Engine::start_sim(Arc::clone(&spec), config.clone(), seed);
        for ev in &stream {
            engine.submit(ev.clone()).unwrap();
        }
        let report = engine.finish();
        quarantine_counts.push(report.metrics.events_quarantined.get());
        metric_snapshots.push(serde_json::to_string_pretty(&report.metrics.snapshot()).unwrap());
        outcome_sets.push(report.outcomes);
    }
    for i in 1..5 {
        assert_eq!(
            outcome_sets[0], outcome_sets[i],
            "outcome set diverged between run 0 and run {i}"
        );
        assert_eq!(
            quarantine_counts[0], quarantine_counts[i],
            "quarantine count diverged between run 0 and run {i}"
        );
        assert_eq!(
            metric_snapshots[0], metric_snapshots[i],
            "metrics snapshot diverged between run 0 and run {i}"
        );
    }
    // The run exercised the machinery at all.
    assert!(!outcome_sets[0].is_empty());
}

// ---------------------------------------------------------------------
// Satellite 2: dead or wedged workers surface as typed errors instead of
// hanging the producer. Without `SubmitError` + the try_send/timeout
// loop, both of these tests block forever.
// ---------------------------------------------------------------------

#[test]
fn submit_against_dead_workers_errors_instead_of_hanging() {
    let spec = compile(None);
    // Every delivery panics and the respawn budget is zero: the worker
    // exits on the first event it touches.
    let config = EngineConfig {
        shards: 1,
        workers: 1,
        queue_capacity: 4,
        fault: FaultPlan {
            seed: 1,
            panic_prob: 1.0,
            max_respawns: 0,
            ..FaultPlan::none()
        },
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(spec, config);
    let event = |i: u64| Event::Step {
        session: "s".to_string(),
        state: "p".to_string(),
        regs: vec![Value(i), Value(0)],
    };
    let mut saw_dead = false;
    for i in 0..10_000 {
        match engine.submit(event(i)) {
            Ok(()) => std::thread::sleep(Duration::from_millis(1)),
            Err(SubmitError::WorkersDead) => {
                saw_dead = true;
                break;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(saw_dead, "submits against a dead worker pool must error");
    let report = engine.finish();
    assert!(report.metrics.worker_panics.get() >= 1);
    assert!(report.metrics.submit_errors.get() >= 1);
}

#[test]
fn full_queue_with_wedged_worker_times_out_instead_of_hanging() {
    let spec = compile(None);
    // Every delivery stalls 30 ms against a capacity-1 queue; the producer
    // gives up after 20 ms instead of blocking indefinitely.
    let config = EngineConfig {
        shards: 1,
        workers: 1,
        queue_capacity: 1,
        submit_timeout: Some(Duration::from_millis(20)),
        fault: FaultPlan {
            seed: 2,
            stall_prob: 1.0,
            stall_ns: 30_000_000,
            ..FaultPlan::none()
        },
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(spec, config);
    let event = |i: u64| Event::Step {
        session: "s".to_string(),
        state: "p".to_string(),
        regs: vec![Value(i), Value(0)],
    };
    let mut saw_full = false;
    for i in 0..50 {
        match engine.submit(event(i)) {
            Ok(()) => {}
            Err(SubmitError::QueueFull { shard }) => {
                assert_eq!(shard, 0);
                saw_full = true;
                break;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(saw_full, "a wedged worker must surface as QueueFull");
    let report = engine.finish();
    assert!(report.metrics.submit_errors.get() >= 1);
}

#[test]
fn arity_is_rejected_at_submit_time() {
    let spec = compile(None);
    let mut engine = Engine::start(spec, EngineConfig::default());
    let err = engine
        .submit(Event::Step {
            session: "s".to_string(),
            state: "p".to_string(),
            regs: vec![Value(1)], // spec has 2 registers
        })
        .unwrap_err();
    assert_eq!(err, SubmitError::Arity { got: 1, want: 2 });
    let report = engine.finish();
    assert_eq!(report.outcomes.len(), 0, "the bad event never entered");
}

// ---------------------------------------------------------------------
// Worker panics with respawn: session state survives the panic.
// ---------------------------------------------------------------------

#[test]
fn threaded_workers_respawn_with_state_intact() {
    let spec = compile(None);
    let config = EngineConfig {
        shards: 2,
        workers: 2,
        queue_capacity: 16,
        quarantine_cap: 1_000_000,
        fault: FaultPlan {
            seed: 3,
            panic_prob: 0.2,
            ..FaultPlan::none()
        },
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(Arc::clone(&spec), config);
    // 20 sessions × 20 legal steps + end: all must end cleanly even
    // though ~20% of deliveries panic the worker first.
    for step in 0..20 {
        for s in 0..20 {
            engine
                .submit(Event::Step {
                    session: format!("s{s}"),
                    state: "p".to_string(),
                    regs: vec![Value(s), Value(step)],
                })
                .unwrap();
        }
    }
    for s in 0..20u64 {
        engine
            .submit(Event::End {
                session: format!("s{s}"),
            })
            .unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.outcomes.len(), 20);
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.status == SessionStatus::Ended),
        "sessions must survive worker panics: {:?}",
        report.outcomes
    );
    assert!(
        report.metrics.worker_panics.get() > 0,
        "the plan should actually have fired"
    );
    assert_eq!(report.metrics.events_processed.get(), 420);
}

// ---------------------------------------------------------------------
// View-enabled crash/restart: observer frontiers survive the snapshot.
// ---------------------------------------------------------------------

#[test]
fn view_observer_state_survives_crash_and_restore() {
    let spec = compile_view_spec();
    let config = EngineConfig {
        shards: 2,
        workers: 1,
        max_view_frontier: 8,
        ..EngineConfig::default()
    };
    let stream: Vec<Event> = {
        let mut rng = StdRng::seed_from_u64(0xBEE);
        gen_stream(&mut rng)
    };

    let mut uninterrupted = Engine::start_sim(Arc::clone(&spec), config.clone(), 9);
    for ev in &stream {
        uninterrupted.submit(ev.clone()).unwrap();
    }
    let want = uninterrupted.finish();

    let mut first = Engine::start_sim(Arc::clone(&spec), config.clone(), 9);
    for ev in &stream[..stream.len() / 2] {
        first.submit(ev.clone()).unwrap();
    }
    let snap = first.checkpoint().unwrap();
    drop(first);
    let mut second = Engine::restore_sim(Arc::clone(&spec), config, 10, &snap).unwrap();
    for ev in &stream[stream.len() / 2..] {
        second.submit(ev.clone()).unwrap();
    }
    let got = second.finish();

    let degraded = |r: &rega_stream::EngineReport| -> BTreeMap<String, (Verdict, bool)> {
        r.outcomes
            .iter()
            .map(|o| (o.session.clone(), (coarse(&o.status), o.view_degraded)))
            .collect()
    };
    assert_eq!(
        degraded(&got),
        degraded(&want),
        "view verdicts and degradation flags must survive a crash/restore"
    );
}

// ---------------------------------------------------------------------
// Snapshot format versioning: current snapshots carry `format_version`;
// legacy v1 snapshots (field named `version`) still restore; unversioned
// or future blobs are rejected with the typed mismatch.
// ---------------------------------------------------------------------

/// A small deterministic run whose checkpoint the versioning tests mutate.
fn checkpoint_fixture() -> (Arc<CompiledSpec>, serde_json::Value) {
    let spec = compile(None);
    let mut engine = Engine::start_sim(Arc::clone(&spec), EngineConfig::default(), 3);
    for line in [
        r#"{"session": "s1", "state": "p", "regs": [1, 1]}"#,
        r#"{"session": "s1", "state": "p", "regs": [1, 2]}"#,
        r#"{"session": "s2", "state": "p", "regs": [5, 5]}"#,
    ] {
        engine.submit(parse_event(line).unwrap()).unwrap();
    }
    let snap = engine.checkpoint().unwrap();
    engine.finish();
    (spec, snap)
}

#[test]
fn checkpoint_declares_current_format_version() {
    let (_, snap) = checkpoint_fixture();
    assert_eq!(snap["format_version"].as_u64(), Some(2));
    assert!(snap["version"].is_null(), "legacy field must be gone");
}

#[test]
fn legacy_v1_snapshot_still_restores() {
    let (spec, mut snap) = checkpoint_fixture();
    // Rewrite into the v1 shape: the version lived in a field named
    // `version`; the payload is otherwise identical.
    let serde_json::Value::Object(obj) = &mut snap else {
        panic!("checkpoint must be a JSON object");
    };
    obj.remove("format_version");
    obj.insert("version".into(), serde_json::json!(1u64));
    let restored = Engine::restore_sim(Arc::clone(&spec), EngineConfig::default(), 3, &snap);
    let report = restored.unwrap().finish();
    assert_eq!(report.outcomes.len(), 2, "both live sessions must survive");
}

#[test]
fn unversioned_v0_snapshot_rejected_with_typed_mismatch() {
    let (spec, mut snap) = checkpoint_fixture();
    let serde_json::Value::Object(obj) = &mut snap else {
        panic!("checkpoint must be a JSON object");
    };
    obj.remove("format_version");
    let got = Engine::restore_sim(Arc::clone(&spec), EngineConfig::default(), 3, &snap);
    assert_eq!(
        got.err(),
        Some(SnapshotError::VersionMismatch {
            found: 0,
            expected: 2
        })
    );
}

#[test]
fn future_format_version_rejected_with_typed_mismatch() {
    let (spec, mut snap) = checkpoint_fixture();
    let serde_json::Value::Object(obj) = &mut snap else {
        panic!("checkpoint must be a JSON object");
    };
    obj.insert("format_version".into(), serde_json::json!(99u64));
    let got = Engine::restore_sim(Arc::clone(&spec), EngineConfig::default(), 3, &snap);
    match got.err() {
        Some(SnapshotError::VersionMismatch {
            found: 99,
            expected: 2,
        }) => {}
        other => panic!("expected a version-99 mismatch, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Satellite 3: parser fuzzing — byte mutations of valid lines must yield
// typed errors or valid events, never panics.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_survives_byte_mutations(
        which in 0usize..4,
        mutations in prop::collection::vec((0usize..80, 0u8..255), 1..8),
    ) {
        let lines = [
            r#"{"session": "paper-17", "state": "submitted", "regs": [17, 3]}"#,
            r#"{"session": "s", "end": true}"#,
            r#"{"session": "x", "state": "p", "regs": []}"#,
            r#"{"session": "y", "state": "q", "regs": [0, 1, 2, 3, 4]}"#,
        ];
        let mut bytes = lines[which].as_bytes().to_vec();
        for &(pos, byte) in &mutations {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        let line = String::from_utf8_lossy(&bytes);
        // Must not panic; errors are fine.
        let _ = parse_event(&line);
        let _ = parse_event_checked(&line, 2);
    }
}

#[test]
fn checked_parser_rejects_wrong_arity_lines() {
    let line = r#"{"session": "s", "state": "p", "regs": [1, 2, 3]}"#;
    assert!(parse_event(line).is_ok(), "syntactically fine");
    assert!(
        parse_event_checked(line, 2).is_err(),
        "but the spec has 2 registers"
    );
}
