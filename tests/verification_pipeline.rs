//! Randomized cross-crate tests of the decision procedures: emptiness
//! witnesses re-validate, verification is coherent with emptiness, and the
//! universal witness database of the chase supports its runs.

use rega_analysis::chase::universal_witness_database;
use rega_analysis::emptiness::{check_emptiness, EmptinessOptions, EmptinessVerdict};
use rega_analysis::verify::{verify, VerifyOptions};
use rega_core::generate::{random_automaton, random_extended, GenParams};
use rega_core::ExtendedAutomaton;
use rega_data::{Qf, QfTerm};
use rega_logic::LtlFo;

fn params() -> GenParams {
    GenParams {
        states: 3,
        k: 2,
        out_degree: 2,
        literals_per_type: 2,
        unary_relations: 1,
        relational_probability: 0.4,
    }
}

#[test]
fn emptiness_witnesses_validate() {
    for seed in 0..15 {
        let ext = ExtendedAutomaton::new(random_automaton(&params(), seed));
        match check_emptiness(&ext, &EmptinessOptions::default()).unwrap() {
            EmptinessVerdict::NonEmpty(w) => {
                assert!(
                    w.prefix_run.validate(ext.ra(), &w.database).is_ok(),
                    "seed {seed}: prefix run must validate"
                );
                assert!(
                    ext.check_finite_prefix(&w.database, &w.prefix_run).is_ok(),
                    "seed {seed}: prefix run must satisfy the constraints"
                );
                if let Some(run) = &w.lasso_run {
                    assert!(
                        ext.check_lasso_run(&w.database, run).is_ok(),
                        "seed {seed}: lasso run must check end-to-end"
                    );
                }
            }
            EmptinessVerdict::Empty => { /* fine: some generated automata are empty */ }
        }
    }
}

#[test]
fn extended_emptiness_witnesses_validate() {
    for seed in 0..10 {
        let ext = random_extended(&params(), 2, seed);
        if let EmptinessVerdict::NonEmpty(w) =
            check_emptiness(&ext, &EmptinessOptions::default()).unwrap()
        {
            assert!(
                ext.check_finite_prefix(&w.database, &w.prefix_run).is_ok(),
                "seed {seed}"
            );
            if let Some(run) = &w.lasso_run {
                assert!(ext.check_lasso_run(&w.database, run).is_ok(), "seed {seed}");
            }
        }
    }
}

#[test]
fn universal_database_supports_all_witnesses() {
    for seed in [1u64, 4, 9] {
        let ext = ExtendedAutomaton::new(random_automaton(&params(), seed));
        let u = universal_witness_database(&ext, &EmptinessOptions::default()).unwrap();
        for w in &u.witnesses {
            assert!(
                w.prefix_run.validate(ext.ra(), &u.database).is_ok(),
                "seed {seed}: combined database must support every witness"
            );
        }
    }
}

#[test]
fn verification_coherent_with_emptiness() {
    // `G true` holds on every automaton; `F false` holds iff empty.
    let tautology = LtlFo::new("G t", [("t", Qf::True)]).unwrap();
    let absurdity = LtlFo::new("F f", [("f", Qf::False)]).unwrap();
    for seed in 0..8 {
        let ext = ExtendedAutomaton::new(random_automaton(&params(), seed));
        let empty = !check_emptiness(&ext, &EmptinessOptions::default())
            .unwrap()
            .is_nonempty();
        assert!(
            verify(&ext, &tautology, &VerifyOptions::default())
                .unwrap()
                .holds(),
            "seed {seed}: G true must hold"
        );
        let absurd_holds = verify(&ext, &absurdity, &VerifyOptions::default())
            .unwrap()
            .holds();
        assert_eq!(
            absurd_holds, empty,
            "seed {seed}: F false holds iff the automaton is empty"
        );
    }
}

#[test]
fn phi_and_not_phi_cannot_both_fail_on_deterministic_fact() {
    // For a proposition decided identically at every position of every run
    // (x1 = x1), both G p and its negation-counterpart behave coherently.
    let always = LtlFo::new("G p", [("p", Qf::Eq(QfTerm::x(0), QfTerm::x(0)))]).unwrap();
    let never = LtlFo::new("F q", [("q", Qf::neq(QfTerm::x(0), QfTerm::x(0)))]).unwrap();
    for seed in 0..6 {
        let ext = ExtendedAutomaton::new(random_automaton(&params(), seed));
        let empty = !check_emptiness(&ext, &EmptinessOptions::default())
            .unwrap()
            .is_nonempty();
        assert!(verify(&ext, &always, &VerifyOptions::default())
            .unwrap()
            .holds());
        assert_eq!(
            verify(&ext, &never, &VerifyOptions::default())
                .unwrap()
                .holds(),
            empty
        );
    }
}

#[test]
fn counterexamples_are_real_runs() {
    // When verification fails, the returned witness is a genuine run of the
    // product; its projection to the original registers is a run prefix of
    // the original automaton.
    let phi = LtlFo::new("G stable", [("stable", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))]).unwrap();
    let mut found = 0;
    for seed in 0..10 {
        let ra = random_automaton(&params(), seed);
        let k = ra.k() as usize;
        let ext = ExtendedAutomaton::new(ra);
        if let rega_analysis::VerifyResult::CounterExample(w) =
            verify(&ext, &phi, &VerifyOptions::default()).unwrap()
        {
            found += 1;
            // The counterexample changes register 1 somewhere.
            assert!(w
                .prefix_run
                .configs
                .windows(2)
                .any(|p| p[0].regs[0] != p[1].regs[0]));
            assert_eq!(w.prefix_run.configs[0].regs.len(), k);
        }
    }
    assert!(found > 0, "some generated automaton must violate G (x1=y1)");
}

#[test]
fn simulation_lassos_imply_nonemptiness() {
    // Whenever the concrete simulator finds a lasso run over the empty
    // database, the symbolic emptiness check must agree the automaton is
    // non-empty (soundness cross-check between the two engines).
    use rega_core::simulate::{self, SearchLimits};
    use rega_data::{Database, Schema, Value};
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    let free_params = GenParams {
        unary_relations: 0,
        relational_probability: 0.0,
        ..params()
    };
    let mut agreed = 0;
    for seed in 0..10 {
        let ext = ExtendedAutomaton::new(random_automaton(&free_params, seed));
        let found = simulate::find_lasso_run(
            &ext,
            &db,
            5,
            &pool,
            SearchLimits {
                max_nodes: 200_000,
                max_runs: 1_000,
            },
        )
        .unwrap();
        if found.is_some() {
            let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
            assert!(
                v.is_nonempty(),
                "seed {seed}: simulator found a run but emptiness disagrees"
            );
            agreed += 1;
        }
    }
    assert!(agreed > 0, "some generated automaton must have lasso runs");
}

#[test]
fn emptiness_lasso_runs_admit_their_projection() {
    // The lasso run of an emptiness witness, projected to register 1, must
    // be re-admitted by the projected-trace membership search.
    use rega_core::simulate::{self, SearchLimits};
    for seed in 0..8 {
        let free_params = GenParams {
            unary_relations: 0,
            relational_probability: 0.0,
            ..params()
        };
        let ext = ExtendedAutomaton::new(random_automaton(&free_params, seed));
        let EmptinessVerdict::NonEmpty(w) =
            check_emptiness(&ext, &EmptinessOptions::default()).unwrap()
        else {
            continue;
        };
        let Some(run) = &w.lasso_run else { continue };
        let probe = run.projected_register_trace(1);
        let pool: Vec<rega_data::Value> = w.database.adom().into_iter().collect();
        let mut pool = pool;
        for c in &run.configs {
            for &v in &c.regs {
                if !pool.contains(&v) {
                    pool.push(v);
                }
            }
        }
        let admitted = simulate::find_lasso_with_projection(
            &ext,
            &w.database,
            &probe,
            &pool,
            run.configs.len() * 3 + 4,
            SearchLimits {
                max_nodes: 500_000,
                max_runs: 1_000,
            },
        )
        .unwrap();
        assert!(
            admitted.is_some(),
            "seed {seed}: the witness's own projection must be admitted"
        );
    }
}

/// Differential pin of the `SControl` NBA's accepting-state convention
/// (state `1 + t.idx()` accepting iff `from(t) ∈ F`) against ground-truth
/// run semantics ([`LassoRun::validate`]'s Büchi condition: an accepting
/// state inside the loop).
///
/// Over 0-register, database-free automata every control wiring is a real
/// run (all types are empty, hence trivially satisfied), so the NBA and
/// the run semantics must agree on *every* candidate lasso — exhaustively
/// enumerated below. The automata are chosen so that `{t : from(t) ∈ F}`
/// and `{t : to(t) ∈ F}` differ, i.e. the two plausible conventions mark
/// different NBA states accepting; a mis-marked construction (off-by-one
/// letter position, accepting start state, prefix-sensitive acceptance)
/// diverges from the oracle on some enumerated lasso.
#[test]
fn scontrol_nba_acceptance_agrees_with_run_semantics() {
    use rega_automata::Lasso;
    use rega_core::run::{Config, LassoRun};
    use rega_core::symbolic::scontrol_nba;
    use rega_core::{RegisterAutomaton, TransId};
    use rega_data::{Database, Schema, SigmaType};

    // Builds a 0-register automaton from (initials, accepting, edges).
    fn build(
        n: usize,
        inits: &[usize],
        accepting: &[usize],
        edges: &[(usize, usize)],
    ) -> RegisterAutomaton {
        let mut ra = RegisterAutomaton::new(0, Schema::empty());
        let states: Vec<_> = (0..n).map(|i| ra.add_state(&format!("s{i}"))).collect();
        for &i in inits {
            ra.set_initial(states[i]);
        }
        for &i in accepting {
            ra.set_accepting(states[i]);
        }
        for &(u, v) in edges {
            ra.add_transition(states[u], SigmaType::empty(0), states[v])
                .unwrap();
        }
        ra
    }

    // Run-semantics oracle: does (prefix, cycle) describe a valid
    // accepting lasso run? Wiring is reconstructed from the transitions;
    // any inconsistency means "no run", matching an NBA with no path.
    fn run_accepts(ra: &RegisterAutomaton, prefix: &[TransId], cycle: &[TransId]) -> bool {
        let word: Vec<TransId> = prefix.iter().chain(cycle).copied().collect();
        let mut configs = vec![Config::new(ra.transition(word[0]).from, vec![])];
        for (i, &t) in word.iter().enumerate() {
            if ra.transition(t).from != configs[i].state {
                return false; // broken wiring: not a run at all
            }
            configs.push(Config::new(ra.transition(t).to, vec![]));
        }
        // The wrap-around step must re-enter the cycle's first position.
        if configs.pop().unwrap().state != configs[prefix.len()].state {
            return false;
        }
        let run = LassoRun::new(configs, word, prefix.len());
        run.validate(ra, &Database::new(Schema::empty())).is_ok()
    }

    // Automata where from- and to-acceptance differ per transition:
    let cases = [
        // accepting init leads into a non-accepting 2-cycle; a second
        // accepting 2-cycle hangs off the start.
        build(4, &[0], &[0, 3], &[(0, 1), (1, 2), (2, 1), (0, 3), (3, 0)]),
        // accepting state reachable in the prefix only (never in a cycle).
        build(3, &[0], &[1], &[(0, 1), (1, 2), (2, 2)]),
        // self-loops on accepting and non-accepting states plus a bridge.
        build(2, &[0], &[1], &[(0, 0), (0, 1), (1, 1), (1, 0)]),
        // two initial states, only one of which reaches acceptance.
        build(4, &[0, 2], &[3], &[(0, 1), (1, 0), (2, 3), (3, 2)]),
    ];
    for (ci, ra) in cases.iter().enumerate() {
        let nba = scontrol_nba(ra).unwrap();
        let trans: Vec<TransId> = ra.transition_ids().collect();
        // All words prefix·cycle^ω with |prefix| ≤ 2, 1 ≤ |cycle| ≤ 3.
        let seqs = |len: usize| -> Vec<Vec<TransId>> {
            let mut out = vec![vec![]];
            for _ in 0..len {
                out = out
                    .into_iter()
                    .flat_map(|s| {
                        trans.iter().map(move |&t| {
                            let mut s2 = s.clone();
                            s2.push(t);
                            s2
                        })
                    })
                    .collect();
            }
            out
        };
        for plen in 0..=2 {
            for clen in 1..=3 {
                for prefix in seqs(plen) {
                    for cycle in seqs(clen) {
                        let nba_accepts =
                            nba.accepts_lasso(&Lasso::new(prefix.clone(), cycle.clone()));
                        let oracle = run_accepts(ra, &prefix, &cycle);
                        assert_eq!(
                            nba_accepts, oracle,
                            "case {ci}: SControl NBA and run semantics disagree on \
                             prefix {prefix:?}, cycle {cycle:?}"
                        );
                    }
                }
            }
        }
    }
}
