//! Loopback integration tests for `rega-serve`: a real TCP server, real
//! client connections, concurrent tenants.
//!
//! The core assertion is *verdict identity*: N concurrent clients × M
//! sessions per tenant, streamed over the wire (one tenant speaking the
//! binary framing, the other JSONL), must yield byte-for-byte the same
//! violation entries as feeding the identical per-session event sequences
//! through the same `rega_stream` engine in-process — the path `rega
//! monitor` takes. Interleaving across sessions and connections must not
//! matter; per-session order is preserved by the engine's shard routing.
//!
//! The second test drives the per-tenant quota machinery end to end over
//! the wire and checks every rejection is *typed* (stable `error.code`),
//! and the third exercises the graceful drain: flipping the shutdown flag
//! must reject new admissions, finish in-flight engines, and hand back the
//! final report with every session's verdict.

use rega_serve::proto::{read_frame, write_frame, Framing};
use rega_serve::{Server, ServerConfig, TenantQuotas};
use rega_stream::{parse_event_checked, CompiledSpec, Engine, EngineConfig, SessionStatus};
use serde_json::{json, Value as Json};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Tenant A's spec: two registers, nondeterministic control, a σ-type
/// restriction, and a global equality constraint (the same spec the
/// engine-vs-batch differential test pins).
fn spec_a() -> &'static str {
    "\
registers 2
state p init accept
state q accept
trans p -> p : x1 = y1
trans p -> q :
trans q -> p :
trans q -> q : x2 != y2
constraint eq 1 1 : p p p
"
}

/// Tenant B's spec: one register, a keep-the-register self-loop and an
/// escape state — structurally different from A's so the test proves the
/// tenants' engines are genuinely independent.
fn spec_b() -> &'static str {
    "\
registers 1
state p init accept
state q accept
trans p -> p : x1 = y1
trans p -> q :
trans q -> q :
"
}

/// Deterministic event stream for one session. Sessions cycle through
/// three shapes: `idx % 3 == 0` violates mid-stream (a `p → p` step that
/// changes register 1, which no transition explains), `idx % 3 == 1` ends
/// cleanly with a terminal event, `idx % 3 == 2` stays open to be swept up
/// by the spec close.
fn events_for(session: &str, idx: usize, registers: usize) -> Vec<Json> {
    let regs = |v: u64| -> Vec<Json> { (0..registers).map(|_| Json::from(v)).collect() };
    let step = |state: &str, r: Vec<Json>| json!({"session": session, "state": state, "regs": r});
    let mut out = vec![
        step("p", regs(1)),
        step("p", regs(1)),
        step("q", regs(2)),
        step("p", regs(3)),
    ];
    match idx % 3 {
        0 => {
            // From p, claim p again with register 1 changed: `p → p`
            // demands x1 = y1, and no other transition targets p from p.
            let mut r = regs(3);
            r[0] = Json::from(9u64);
            out.push(step("p", r));
        }
        1 => out.push(json!({"session": session, "end": true})),
        _ => out.push(step("p", regs(3))),
    }
    out
}

/// One wire client: a connection plus its chosen framing.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framing: Framing,
}

impl Client {
    fn connect(addr: std::net::SocketAddr, framing: Framing) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            reader: BufReader::new(stream),
            writer,
            framing,
        }
    }

    /// One request/response round trip. Asserts the response arrives in
    /// the same framing the request was sent in.
    fn call(&mut self, doc: &Json) -> Json {
        write_frame(&mut self.writer, self.framing, doc).expect("write frame");
        let (framing, response) = read_frame(&mut self.reader)
            .expect("read frame")
            .expect("server closed the connection mid-request");
        assert_eq!(
            framing, self.framing,
            "response framing must mirror the request"
        );
        response
    }

    /// A round trip that must succeed.
    fn ok(&mut self, doc: &Json) -> Json {
        let response = self.call(doc);
        assert_eq!(
            response["ok"],
            json!(true),
            "request {doc:?} failed: {response:?}"
        );
        response
    }

    /// A round trip that must fail with the given typed error code.
    fn expect_code(&mut self, doc: &Json, code: &str) -> Json {
        let response = self.call(doc);
        assert_eq!(
            response["ok"],
            json!(false),
            "request {doc:?} unexpectedly ok"
        );
        assert_eq!(
            response["error"]["code"],
            json!(code),
            "wrong error code for {doc:?}: {response:?}"
        );
        response
    }
}

/// The engine sizing both the server and the in-process reference use —
/// identical template, identical quarantine policy, so any verdict
/// difference is the server's fault, not a config skew.
fn engine_template() -> EngineConfig {
    EngineConfig {
        shards: 4,
        workers: 2,
        queue_capacity: 64,
        ..EngineConfig::default()
    }
}

/// The in-process reference: the exact event lines the clients sent, fed
/// through `parse_event_checked` + `Engine` the way `rega monitor` does,
/// rendered to the monitor's violation-entry shape.
fn reference_verdicts(spec_text: &str, sessions: &[(String, Vec<Json>)]) -> (Json, Json) {
    let ext = rega_core::spec::parse_spec(spec_text).unwrap();
    let db = rega_data::Database::new(ext.ra().schema().clone());
    let compiled = CompiledSpec::compile(ext, db, None).unwrap();
    let registers = compiled.registers();
    let mut engine = Engine::start(Arc::new(compiled), engine_template());
    for (_, events) in sessions {
        for doc in events {
            let line = serde_json::to_string(doc).unwrap();
            let event = parse_event_checked(&line, registers).unwrap();
            engine.submit(event).unwrap();
        }
    }
    let report = engine.finish();
    let mut violations = Vec::new();
    for outcome in report.violations() {
        if let SessionStatus::Violated(kind) = &outcome.status {
            violations.push(json!({
                "session": outcome.session.as_str(),
                "reason": kind.to_string(),
                "events": outcome.events,
            }));
        }
    }
    let outcomes: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| {
            json!({
                "session": o.session.as_str(),
                "status": match &o.status {
                    SessionStatus::Active => "active",
                    SessionStatus::Ended => "ended",
                    SessionStatus::Violated(_) => "violated",
                },
                "events": o.events,
                "quarantined": o.quarantined,
            })
        })
        .collect();
    (Json::Array(violations), Json::Array(outcomes))
}

fn start_server(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<Json>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || server.run(flag));
    (addr, shutdown, handle)
}

#[test]
fn concurrent_tenants_match_the_batch_monitor_byte_for_byte() {
    const CLIENTS: usize = 3;
    const SESSIONS: usize = 4;

    let (addr, shutdown, server) = start_server(ServerConfig {
        engine: engine_template(),
        ..ServerConfig::default()
    });

    // Admit both tenants and load their (distinct) specs up front.
    let mut admin = Client::connect(addr, Framing::Jsonl);
    for (tenant, spec) in [("alpha", spec_a()), ("beta", spec_b())] {
        admin.ok(&json!({"cmd": "hello", "tenant": tenant}));
        admin.ok(&json!({
            "cmd": "load-spec", "tenant": tenant, "name": "main", "spec": spec,
        }));
    }
    assert_eq!(
        admin.ok(&json!({"cmd": "health"}))["status"],
        json!("serving")
    );

    // N concurrent clients per tenant, each with its own connection and
    // M sessions; tenant alpha speaks binary frames, beta JSONL.
    let mut threads = Vec::new();
    for (tenant, framing, registers) in [
        ("alpha", Framing::Binary, 2usize),
        ("beta", Framing::Jsonl, 1usize),
    ] {
        for client_no in 0..CLIENTS {
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr, framing);
                client.ok(&json!({"cmd": "hello", "tenant": tenant}));
                let mut sent: Vec<(String, Vec<Json>)> = Vec::new();
                for s in 0..SESSIONS {
                    let session = format!("{tenant}-c{client_no}-s{s}");
                    client.ok(&json!({
                        "cmd": "open-session", "tenant": tenant, "spec": "main",
                        "session": session.as_str(),
                    }));
                    sent.push((
                        session.clone(),
                        events_for(&session, client_no * SESSIONS + s, registers),
                    ));
                }
                // Interleave sessions round-robin, one event per frame for
                // the first row, then the rest in one batch per session —
                // both the `event` and `event-batch` paths get traffic.
                for (session_idx, (_, events)) in sent.iter().enumerate() {
                    let first = events[0].clone();
                    client.ok(&json!({
                        "cmd": "event", "tenant": tenant, "spec": "main",
                        "event": first,
                    }));
                    let rest: Vec<Json> = events[1..].to_vec();
                    let response = client.ok(&json!({
                        "cmd": "event-batch", "tenant": tenant, "spec": "main",
                        "events": rest,
                    }));
                    assert_eq!(
                        response["accepted"],
                        json!((events.len() - 1) as u64),
                        "batch {session_idx} partially rejected"
                    );
                }
                sent
            }));
        }
    }
    let mut streamed: std::collections::BTreeMap<&str, Vec<(String, Vec<Json>)>> =
        std::collections::BTreeMap::new();
    for (i, t) in threads.into_iter().enumerate() {
        let tenant = if i < CLIENTS { "alpha" } else { "beta" };
        streamed
            .entry(tenant)
            .or_default()
            .extend(t.join().unwrap());
    }

    // Close each spec: the server drains its engine and reports final
    // verdicts, which must match the in-process reference byte for byte.
    for (tenant, spec_text) in [("alpha", spec_a()), ("beta", spec_b())] {
        let report = admin.ok(&json!({
            "cmd": "close", "tenant": tenant, "spec": "main",
        }));
        let (want_violations, want_outcomes) = reference_verdicts(spec_text, &streamed[tenant]);
        assert!(
            !want_violations.as_array().unwrap().is_empty(),
            "the generated streams must include violations for the test to mean anything"
        );
        assert_eq!(
            serde_json::to_string(&report["report"]["violations"]).unwrap(),
            serde_json::to_string(&want_violations).unwrap(),
            "tenant {tenant}: served violations differ from the batch monitor's"
        );
        assert_eq!(
            serde_json::to_string(&report["report"]["outcomes"]).unwrap(),
            serde_json::to_string(&want_outcomes).unwrap(),
            "tenant {tenant}: served outcomes differ from the batch monitor's"
        );
    }

    // Stats still see both tenants (with zero specs left).
    let stats = admin.ok(&json!({"cmd": "stats"}));
    assert_eq!(stats["stats"]["tenants"].as_array().unwrap().len(), 2);

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    drop(admin);
    let final_report = server.join().unwrap();
    assert_eq!(final_report["clean"], json!(true));
}

#[test]
fn tenant_quotas_reject_over_limit_work_with_typed_errors() {
    let (addr, shutdown, server) = start_server(ServerConfig {
        max_tenants: 2,
        quotas: TenantQuotas {
            max_specs: 1,
            max_sessions: 2,
            ..TenantQuotas::default()
        },
        engine: engine_template(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr, Framing::Jsonl);

    // Tenant cap.
    client.ok(&json!({"cmd": "hello", "tenant": "one"}));
    client.ok(&json!({"cmd": "hello", "tenant": "two"}));
    client.expect_code(&json!({"cmd": "hello", "tenant": "three"}), "tenant-limit");

    // Spec quota and duplicate detection.
    client.ok(&json!({"cmd": "load-spec", "tenant": "one", "name": "s", "spec": spec_b()}));
    client.expect_code(
        &json!({"cmd": "load-spec", "tenant": "one", "name": "s", "spec": spec_b()}),
        "duplicate-spec",
    );
    client.expect_code(
        &json!({"cmd": "load-spec", "tenant": "one", "name": "other", "spec": spec_b()}),
        "spec-limit",
    );
    client.expect_code(
        &json!({"cmd": "load-spec", "tenant": "two", "name": "bad", "spec": "not a spec"}),
        "spec-invalid",
    );

    // Session quota: two open, the third rejected, a close frees a slot.
    client.ok(&json!({"cmd": "open-session", "tenant": "one", "spec": "s", "session": "a"}));
    client.ok(&json!({"cmd": "open-session", "tenant": "one", "spec": "s", "session": "b"}));
    client.expect_code(
        &json!({"cmd": "open-session", "tenant": "one", "spec": "s", "session": "c"}),
        "session-limit",
    );
    client.ok(&json!({"cmd": "close", "tenant": "one", "spec": "s", "session": "a"}));
    client.ok(&json!({"cmd": "open-session", "tenant": "one", "spec": "s", "session": "c"}));

    // Traffic must name an open session; unknown names are typed too.
    client.expect_code(
        &json!({"cmd": "event", "tenant": "one", "spec": "s",
                "event": {"session": "ghost", "state": "p", "regs": [1u64]}}),
        "unknown-session",
    );
    client.expect_code(
        &json!({"cmd": "event", "tenant": "one", "spec": "nope",
                "event": {"session": "b", "state": "p", "regs": [1u64]}}),
        "unknown-spec",
    );
    client.expect_code(
        &json!({"cmd": "snapshot", "tenant": "nobody"}),
        "unknown-tenant",
    );

    // Malformed requests and frames are typed without killing the session.
    client.expect_code(&json!({"cmd": "warp-core"}), "bad-request");
    let response = client.call(&json!({"cmd": "event", "tenant": "one", "spec": "s",
        "event": {"session": "b", "state": "p", "regs": [1u64, 2u64]}}));
    assert_eq!(
        response["error"]["code"],
        json!("bad-event"),
        "{response:?}"
    );

    // A compile budget the tenant cannot loosen: the server-wide ceiling
    // wins even though the tenant asked for nothing.
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    drop(client);
    let report = server.join().unwrap();
    assert_eq!(report["clean"], json!(true));
    // The drained report still carries tenant `one`'s open sessions.
    let tenants = report["drained"]["tenants"].as_array().unwrap();
    assert_eq!(tenants.len(), 2);
}

#[test]
fn graceful_drain_finishes_in_flight_sessions() {
    let (addr, shutdown, server) = start_server(ServerConfig {
        engine: engine_template(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr, Framing::Binary);
    client.ok(&json!({"cmd": "hello", "tenant": "t"}));
    client.ok(&json!({"cmd": "load-spec", "tenant": "t", "name": "s", "spec": spec_b()}));
    client.ok(&json!({"cmd": "open-session", "tenant": "t", "spec": "s", "session": "x"}));
    client.ok(
        &json!({"cmd": "event-batch", "tenant": "t", "spec": "s", "events": [
            {"session": "x", "state": "p", "regs": [5u64]},
            {"session": "x", "state": "p", "regs": [5u64]},
        ]}),
    );

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    drop(client);
    let report = server.join().unwrap();
    assert_eq!(report["clean"], json!(true));
    let tenants = report["drained"]["tenants"].as_array().unwrap();
    assert_eq!(tenants.len(), 1);
    let outcomes = tenants[0]["specs"][0]["outcomes"].as_array().unwrap();
    assert_eq!(outcomes.len(), 1, "the in-flight session must be reported");
    assert_eq!(outcomes[0]["session"], json!("x"));
    assert_eq!(outcomes[0]["status"], json!("active"));
    assert_eq!(outcomes[0]["events"], json!(2u64));

    // After the drain the port no longer accepts (or the connection is
    // immediately closed): a fresh health probe must fail.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = write_frame(&mut writer, Framing::Jsonl, &json!({"cmd": "health"}));
            match read_frame(&mut reader) {
                Ok(None) | Err(_) => {}
                Ok(Some(other)) => panic!("drained server answered: {other:?}"),
            }
        }
    }
}
