//! Randomized cross-crate tests of the projection pipeline: for generated
//! register automata, the Proposition 20 view must be trace-faithful and
//! LR-bounded, and the Theorem 13 pipeline must agree with it on plain
//! inputs.

use rega_core::generate::{random_automaton, GenParams};
use rega_core::simulate::{self, SearchLimits};
use rega_core::ExtendedAutomaton;
use rega_data::{Database, Schema, Value};
use rega_views::prop20::project_register_automaton;
use rega_views::thm13::project_extended;

fn limits() -> SearchLimits {
    SearchLimits {
        max_nodes: 2_000_000,
        max_runs: 500_000,
    }
}

fn small_params() -> GenParams {
    GenParams {
        states: 2,
        k: 2,
        out_degree: 2,
        literals_per_type: 2,
        unary_relations: 0,
        relational_probability: 0.0,
    }
}

#[test]
fn random_projections_are_faithful() {
    let db = Database::new(Schema::empty());
    // The pool must be large enough for the *hidden* registers of the
    // original automaton to realize every projection: the view quantifies
    // hidden values over the whole (infinite) domain, while the original
    // enumeration draws them from the pool. Two values are not always
    // sufficient for k = 2 with one hidden register (seed 9 needs a third
    // value to keep the visible register constant), so give the original
    // side a pool with a spare value per hidden register.
    let pool = vec![Value(1), Value(2), Value(3)];
    for seed in 0..12 {
        let ra = random_automaton(&small_params(), seed);
        let Ok(proj) = project_register_automaton(&ra, 1) else {
            continue;
        };
        let original = ExtendedAutomaton::new(ra.clone());
        for len in 1..=3 {
            let want = simulate::projected_settled_traces(&original, &db, len, 1, &pool, limits());
            let got = simulate::projected_settled_traces(&proj.view, &db, len, 1, &pool, limits());
            assert_eq!(want, got, "seed {seed}, length {len}");
        }
    }
}

#[test]
fn random_projections_are_lr_bounded() {
    // Proposition 20: every projection of a register automaton is
    // LR-bounded.
    for seed in 0..8 {
        let ra = random_automaton(&small_params(), seed);
        let proj = project_register_automaton(&ra, 1).unwrap();
        let lr =
            rega_analysis::lr::is_lr_bounded(&proj.view, &rega_analysis::lr::LrOptions::default())
                .unwrap();
        assert!(lr.bounded, "seed {seed}: projections must be LR-bounded");
    }
}

#[test]
fn thm13_agrees_with_prop20_on_plain_inputs() {
    // On inputs without global constraints, Theorem 13's pipeline reduces
    // to Proposition 20's; their views must have identical settled traces.
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    for seed in 0..6 {
        let ra = random_automaton(&small_params(), seed);
        let p20 = project_register_automaton(&ra, 1).unwrap();
        let t13 = project_extended(&ExtendedAutomaton::new(ra), 1).unwrap();
        for len in 1..=3 {
            let a = simulate::projected_settled_traces(&p20.view, &db, len, 1, &pool, limits());
            let b = simulate::projected_settled_traces(&t13.view, &db, len, 1, &pool, limits());
            assert_eq!(a, b, "seed {seed}, length {len}");
        }
    }
}

#[test]
fn projecting_everything_changes_nothing() {
    // m = k must preserve the trace set exactly.
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    for seed in 0..6 {
        let ra = random_automaton(&small_params(), seed);
        let proj = project_register_automaton(&ra, 2).unwrap();
        let original = ExtendedAutomaton::new(ra);
        for len in 1..=3 {
            let want = simulate::projected_settled_traces(&original, &db, len, 2, &pool, limits());
            let got = simulate::projected_settled_traces(&proj.view, &db, len, 2, &pool, limits());
            assert_eq!(want, got, "seed {seed}, length {len}");
        }
    }
}

#[test]
fn projection_composes() {
    // Projecting 2 → 1 register directly equals projecting in two stages
    // through the Theorem 13 pipeline (closure under projection).
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    for seed in [0, 3, 5] {
        let ra = random_automaton(&small_params(), seed);
        let direct = project_register_automaton(&ra, 1).unwrap();
        let stage1 = project_register_automaton(&ra, 2).unwrap(); // identity-ish
        let stage2 = project_extended(&stage1.view, 1);
        let Ok(stage2) = stage2 else {
            continue; // outside thm13's supported fragment — skip
        };
        for len in 1..=2 {
            let a = simulate::projected_settled_traces(&direct.view, &db, len, 1, &pool, limits());
            let b = simulate::projected_settled_traces(&stage2.view, &db, len, 1, &pool, limits());
            assert_eq!(a, b, "seed {seed}, length {len}");
        }
    }
}
