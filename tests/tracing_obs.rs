//! Cross-crate tracing integration tests (the `rega-obs` observability
//! layer driven by real constructions).
//!
//! 1. **Stack discipline under the threaded scheduler**: every worker
//!    thread's span records must form a well-nested stack, and the
//!    per-shard `stream.shard_batch` spans must never interleave within
//!    one thread's stack — a worker drains one shard burst to completion
//!    before opening the next.
//! 2. **Trace → report round trip**: a `check_emptiness` run under the
//!    JSONL schema reconstructs the per-phase wall-time tree (NBA build /
//!    lasso search / witness) and the SatCache hit ratio through
//!    `rega_obs::report` — the same pipeline `rega trace-report` runs.

use rega_core::spec::parse_spec;
use rega_data::{Database, Schema, Value};
use rega_obs::trace::TraceEvent;
use rega_obs::TraceEventKind;
use rega_stream::{CompiledSpec, Engine, EngineConfig, Event};
use std::collections::BTreeMap;
use std::sync::Arc;

fn spec_text() -> &'static str {
    "\
registers 1
state p init accept
trans p -> p : x1 = y1
trans p -> p : x1 != y1
"
}

fn compile() -> Arc<CompiledSpec> {
    let ext = parse_spec(spec_text()).unwrap();
    let db = Database::new(Schema::empty());
    Arc::new(CompiledSpec::compile(ext, db, None).unwrap())
}

/// Replays one thread's records through a stack machine, asserting
/// well-nestedness; returns the maximum number of simultaneously open
/// `stream.shard_batch` spans and the set of shards seen on the thread.
fn check_thread_stack(records: &[&TraceEvent]) -> (usize, Vec<u64>) {
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    let mut open_batches = 0usize;
    let mut max_open_batches = 0usize;
    let mut shards = Vec::new();
    for r in records {
        match r.kind {
            TraceEventKind::SpanStart => {
                let id = r.span.expect("span_start carries a span id");
                // The recorded parent must be the span below on this
                // thread's stack (or none at the bottom).
                assert_eq!(
                    r.parent,
                    stack.last().map(|(id, _)| *id),
                    "span_start parent must be the enclosing span ({})",
                    r.name
                );
                stack.push((id, r.name));
                if r.name == "stream.shard_batch" {
                    open_batches += 1;
                    max_open_batches = max_open_batches.max(open_batches);
                    let shard = r
                        .fields
                        .iter()
                        .find(|(k, _)| *k == "shard")
                        .and_then(|(_, v)| match v {
                            rega_obs::trace::FieldValue::U64(n) => Some(*n),
                            _ => None,
                        })
                        .expect("shard_batch records its shard");
                    if !shards.contains(&shard) {
                        shards.push(shard);
                    }
                }
            }
            TraceEventKind::SpanEnd => {
                let id = r.span.expect("span_end carries a span id");
                let (top, name) = stack.pop().expect("span_end without open span");
                assert_eq!(top, id, "span_end must close the innermost span");
                assert_eq!(name, r.name);
                if r.name == "stream.shard_batch" {
                    open_batches -= 1;
                }
            }
            TraceEventKind::Event => {
                // Point events attach to the current top of stack.
                assert_eq!(r.span, stack.last().map(|(id, _)| *id));
            }
        }
    }
    assert!(stack.is_empty(), "thread ended with open spans: {stack:?}");
    (max_open_batches, shards)
}

#[test]
fn threaded_scheduler_spans_do_not_interleave_across_shards() {
    let (sink, guard) = rega_obs::install_memory();
    let spec = compile();
    let config = EngineConfig {
        shards: 4,
        workers: 2,
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(spec, config);
    // 32 sessions spread over the shards, a few steps each.
    for s in 0..32u32 {
        let session = format!("s{s}");
        for v in 0..4u64 {
            engine
                .submit(Event::Step {
                    session: session.clone(),
                    state: "p".into(),
                    regs: vec![Value(v + 1)],
                })
                .unwrap();
        }
        engine.submit(Event::End { session }).unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.outcomes.len(), 32);
    drop(guard);

    let events = sink.events();
    let batch_spans = events
        .iter()
        .filter(|e| e.kind == TraceEventKind::SpanStart && e.name == "stream.shard_batch")
        .count();
    assert!(batch_spans > 0, "workers must emit shard-batch spans");

    // Group by thread and replay each thread's stack.
    let mut by_thread: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in &events {
        by_thread.entry(e.thread).or_default().push(e);
    }
    let mut multi_shard_threads = 0;
    for records in by_thread.values() {
        let (max_open, shards) = check_thread_stack(records);
        // The interleaving property: batches are strictly sequential
        // within one thread, even when the thread owns several shards.
        assert!(
            max_open <= 1,
            "shard batches must not nest/interleave on one thread"
        );
        if shards.len() > 1 {
            multi_shard_threads += 1;
        }
    }
    // With 4 shards on 2 workers every worker owns 2 shards; the property
    // above only bites if some thread actually served more than one.
    assert!(
        multi_shard_threads > 0,
        "test setup must exercise multi-shard workers"
    );
}

#[test]
fn emptiness_trace_reconstructs_phase_tree_and_hit_ratio() {
    use rega_analysis::emptiness::{check_emptiness, EmptinessOptions};

    let (sink, guard) = rega_obs::install_memory();
    let (ra, _) = rega_core::paper::example1();
    let ext = rega_core::ExtendedAutomaton::new(ra);
    let verdict = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
    assert!(verdict.is_nonempty());
    drop(guard);

    // Serialize exactly as the JSONL sink would and feed the report
    // pipeline behind `rega trace-report`.
    let text: String = sink
        .events()
        .iter()
        .map(|e| {
            let mut line = serde_json::to_string(&e.to_json()).unwrap();
            line.push('\n');
            line
        })
        .collect();
    let summary = rega_obs::report::summarize(&text).unwrap();
    assert!(summary.unclosed.is_empty());

    let check = summary
        .tree
        .children
        .get("emptiness.check")
        .expect("root phase span present");
    // The on-the-fly kernel interleaves witness construction with the
    // search, so the witness spans nest *inside* the search span.
    let search = check
        .children
        .get("emptiness.on_the_fly.search")
        .expect("search phase present");
    assert!(search.count >= 1);
    assert!(search.total_ns <= check.total_ns);
    let witness = search
        .children
        .get("emptiness.witness")
        .expect("witness phase nests inside the search");
    assert!(witness.count >= 1);
    assert!(witness.total_ns <= search.total_ns);
    let ratio = summary
        .satcache_hit_ratio()
        .expect("satcache.stats event recorded");
    assert!((0.0..=1.0).contains(&ratio));

    let rendered = rega_obs::report::render(&summary);
    assert!(rendered.contains("emptiness.check"));
    assert!(rendered.contains("satcache hit ratio"));
}
