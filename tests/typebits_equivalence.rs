//! Differential pinning of the bitset σ-type kernel ([`TypeBitsSpace`])
//! against the clone-based [`SigmaType`] operations and the interning
//! cache ([`SatCache`]).
//!
//! Every word-level kernel operation — consistency, saturation, register
//! restriction, pre/post agreement, joint satisfiability, completions —
//! must agree with the direct implementation on arbitrary generated types,
//! very much including *incomplete* ones (the empty type, duplicated
//! literals like `P(x1); P(x1)`, partially constrained registers), and the
//! `SigmaType → TypeBits → SigmaType` round trip must be the identity.

use proptest::prelude::*;
use rega_data::typebits::TypeBitsSpace;
use rega_data::{Literal, SatCache, Schema, SigmaType, Term};

fn schema() -> Schema {
    Schema::with(&[("P", 1), ("R", 2)], &["c"])
}

const K: u16 = 2;

fn space() -> TypeBitsSpace {
    TypeBitsSpace::new(&schema(), K).expect("k=2 with one constant fits the bit universe")
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..K, prop::bool::ANY).prop_map(|(i, x)| if x { Term::x(i) } else { Term::y(i) }),
        (0..K, prop::bool::ANY).prop_map(|(i, x)| if x { Term::x(i) } else { Term::y(i) }),
        Just(Term::cst(0)),
    ]
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    let p = schema().relation("P").unwrap();
    let r = schema().relation("R").unwrap();
    prop_oneof![
        (term_strategy(), term_strategy()).prop_map(|(s, t)| Literal::eq(s, t)),
        (term_strategy(), term_strategy()).prop_map(|(s, t)| Literal::neq(s, t)),
        term_strategy().prop_map(move |t| Literal::rel(p, vec![t])),
        term_strategy().prop_map(move |t| Literal::rel(p, vec![t]).negated()),
        (term_strategy(), term_strategy()).prop_map(move |(s, t)| Literal::rel(r, vec![s, t])),
        (term_strategy(), term_strategy())
            .prop_map(move |(s, t)| Literal::rel(r, vec![s, t]).negated()),
    ]
}

fn type_strategy() -> impl Strategy<Value = SigmaType> {
    // 0..6 literals: the empty (maximally incomplete) type is included and
    // duplicates arise naturally from the collection.
    prop::collection::vec(literal_strategy(), 0..6).prop_map(|lits| SigmaType::new(K, lits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Round trip: decoding an encoded type reproduces it exactly.
    #[test]
    fn encode_decode_is_identity(ty in type_strategy()) {
        let sp = space();
        let b = sp.encode(&ty).expect("generated types fit the space");
        prop_assert_eq!(sp.decode(&b), ty);
    }

    // Every kernel operation agrees with the SigmaType direct path and
    // with the SatCache memoized path.
    #[test]
    fn kernel_ops_agree_with_sigma_type_and_cache(
        a in type_strategy(),
        b in type_strategy(),
    ) {
        let sch = schema();
        let sp = space();
        let cache = SatCache::new(sch.clone());
        let ba = sp.encode(&a).unwrap();
        let bb = sp.encode(&b).unwrap();

        // Consistency.
        prop_assert_eq!(sp.is_consistent(&ba), a.analyze(&sch).is_ok());
        prop_assert_eq!(sp.is_consistent(&ba), cache.is_consistent(&a));

        // Saturation: defined exactly on satisfiable types.
        match (sp.saturate(&ba), a.saturate(&sch)) {
            (Some(sat), Ok(direct)) => prop_assert_eq!(sp.decode(&sat), direct),
            (None, Err(_)) => {}
            (s, d) => prop_assert!(false, "saturate disagrees: {:?} vs {:?}", s, d),
        }

        // Register restriction, at every width down to zero registers.
        for m in 0..=K {
            let sub = sp.sub_space(m).expect("smaller universe fits");
            match (sp.restrict_registers(&ba, m), a.restrict_registers(&sch, m)) {
                (Some(r), Ok(direct)) => prop_assert_eq!(sub.decode(&r), direct),
                (None, Err(_)) => {}
                (r, d) => prop_assert!(false, "restrict({}) disagrees: {:?} vs {:?}", m, r, d),
            }
        }

        // Pre/post agreement (condition (iii) of symbolic control traces).
        match (sp.agrees_with(&ba, &bb), a.agrees_with(&b, &sch)) {
            (Some(bit), Ok(direct)) => prop_assert_eq!(bit, direct),
            (None, Err(_)) => {}
            (bit, d) => prop_assert!(false, "agrees_with disagrees: {:?} vs {:?}", bit, d),
        }

        // Joint satisfiability, both orders, against both oracles.
        prop_assert_eq!(
            sp.jointly_satisfiable(&ba, &bb).expect("space supports joint"),
            a.jointly_satisfiable_with(&b, &sch)
        );
        prop_assert_eq!(
            sp.jointly_satisfiable(&bb, &ba).unwrap(),
            b.jointly_satisfiable_with(&a, &sch)
        );
        prop_assert_eq!(
            sp.jointly_satisfiable(&ba, &bb).unwrap(),
            cache.jointly_satisfiable(&a, &b)
        );

    }

    // Completions: same set of complete saturated extensions. Confined to
    // a one-register unary-relation universe — over the full k=2 schema
    // with a binary relation the completion set of a near-empty type is
    // combinatorial in Bell(5)·2^(classes²) and infeasible to enumerate,
    // for the bit kernel and the clone path alike.
    #[test]
    fn completions_agree_with_sigma_type(ty in small_type_strategy()) {
        let sch = small_schema();
        let sp = TypeBitsSpace::new(&sch, 1).expect("k=1 unary space fits");
        let b = sp.encode(&ty).expect("small types fit the space");
        match (sp.completions(&b), ty.completions(&sch)) {
            (Ok(bits), Ok(direct)) => {
                let mut got: Vec<SigmaType> = bits.iter().map(|c| sp.decode(c)).collect();
                got.sort();
                prop_assert_eq!(got, direct);
            }
            (Err(_), Err(_)) => {}
            (g, d) => prop_assert!(
                false,
                "completions disagrees: {:?} vs {:?}",
                g.map(|v| v.len()),
                d.map(|v| v.len())
            ),
        }
    }
}

fn small_schema() -> Schema {
    Schema::with(&[("U", 1)], &[])
}

fn small_term_strategy() -> impl Strategy<Value = Term> {
    (0..1u16, prop::bool::ANY).prop_map(|(i, x)| if x { Term::x(i) } else { Term::y(i) })
}

fn small_type_strategy() -> impl Strategy<Value = SigmaType> {
    let u = small_schema().relation("U").unwrap();
    let lit = prop_oneof![
        (small_term_strategy(), small_term_strategy()).prop_map(|(s, t)| Literal::eq(s, t)),
        (small_term_strategy(), small_term_strategy()).prop_map(|(s, t)| Literal::neq(s, t)),
        small_term_strategy().prop_map(move |t| Literal::rel(u, vec![t])),
        small_term_strategy().prop_map(move |t| Literal::rel(u, vec![t]).negated()),
    ];
    prop::collection::vec(lit, 0..4).prop_map(|lits| SigmaType::new(1, lits))
}

/// The issue's pinned incomplete type — `P(x1); P(x1)`, a duplicated
/// positive literal and nothing else — through every kernel operation.
#[test]
fn duplicated_literal_incomplete_type() {
    let sch = schema();
    let sp = space();
    let p = sch.relation("P").unwrap();
    let ty = SigmaType::new(
        K,
        [
            Literal::rel(p, vec![Term::x(0)]),
            Literal::rel(p, vec![Term::x(0)]),
        ],
    );
    let b = sp.encode(&ty).unwrap();
    assert_eq!(sp.decode(&b), ty, "round trip collapses the duplicate");
    assert!(sp.is_consistent(&b));
    assert_eq!(
        sp.decode(&sp.saturate(&b).unwrap()),
        ty.saturate(&sch).unwrap()
    );
    assert!(sp.jointly_satisfiable(&b, &b).unwrap());
    assert_eq!(
        sp.agrees_with(&b, &b).unwrap(),
        ty.agrees_with(&ty, &sch).unwrap()
    );

    // Completions of the same duplicated-literal shape, in the small
    // universe where the full set is enumerable.
    let sch1 = small_schema();
    let sp1 = TypeBitsSpace::new(&sch1, 1).unwrap();
    let u = sch1.relation("U").unwrap();
    let ty1 = SigmaType::new(
        1,
        [
            Literal::rel(u, vec![Term::x(0)]),
            Literal::rel(u, vec![Term::x(0)]),
        ],
    );
    let b1 = sp1.encode(&ty1).unwrap();
    let mut got: Vec<SigmaType> = sp1
        .completions(&b1)
        .unwrap()
        .iter()
        .map(|c| sp1.decode(c))
        .collect();
    got.sort();
    assert_eq!(got, ty1.completions(&sch1).unwrap());
}

/// `TypeId`-level round trip through the cache: interning a type, fetching
/// its bits, and re-interning the bits lands on the same id.
#[test]
fn cache_typebits_interning_round_trip() {
    let sch = schema();
    let cache = SatCache::new(sch.clone());
    let sp = cache
        .typebits_space(K)
        .expect("k=2 space available for this schema");
    let p = sch.relation("P").unwrap();
    let types = [
        SigmaType::empty(K),
        SigmaType::new(K, [Literal::rel(p, vec![Term::x(0)])]),
        SigmaType::new(
            K,
            [
                Literal::eq(Term::x(0), Term::y(1)),
                Literal::neq(Term::x(1), Term::cst(0)),
            ],
        ),
    ];
    for ty in &types {
        let id = cache.intern(ty);
        let bits = cache.typebits(id).expect("bits memoized for interned id");
        assert_eq!(cache.intern_typebits(&sp, &bits), id);
        assert_eq!(sp.decode(&bits), *ty);
    }
}
