//! Property-based tests (proptest) on the core data structures and
//! invariants: σ-types, regular expressions and automata, lassos, LTL
//! translation, and the incremental constraint monitor against a
//! brute-force oracle.

use proptest::prelude::*;
use rega_automata::{Dfa, Lasso, Nfa, Regex};
use rega_core::extended::ConstraintKind;
use rega_core::monitor::ConstraintMonitor;
use rega_core::{ExtendedAutomaton, RegisterAutomaton, StateId};
use rega_data::{Literal, RegIdx, Schema, SigmaType, Term, Value};
use rega_logic::translate::ltl_to_automaton;
use rega_logic::Ltl;

// ---------- strategies ----------

fn term_strategy(k: u16) -> impl Strategy<Value = Term> {
    (0..k, prop::bool::ANY).prop_map(|(i, x)| if x { Term::x(i) } else { Term::y(i) })
}

fn literal_strategy(k: u16) -> impl Strategy<Value = Literal> {
    (term_strategy(k), term_strategy(k), prop::bool::ANY).prop_map(|(s, t, eq)| {
        if eq {
            Literal::eq(s, t)
        } else {
            Literal::neq(s, t)
        }
    })
}

fn type_strategy(k: u16) -> impl Strategy<Value = SigmaType> {
    prop::collection::vec(literal_strategy(k), 0..5).prop_map(move |lits| SigmaType::new(k, lits))
}

fn regex_strategy() -> impl Strategy<Value = Regex<u8>> {
    let leaf = prop_oneof![Just(Regex::Epsilon), (0u8..3).prop_map(Regex::Sym),];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Alt),
            inner.prop_map(|r| Regex::Star(Box::new(r))),
        ]
    })
}

fn ltl_strategy() -> impl Strategy<Value = Ltl<u8>> {
    let leaf = prop_oneof![Just(Ltl::True), (0u8..2).prop_map(Ltl::Prop),];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Ltl::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|f| Ltl::Next(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::Until(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|f| Ltl::Finally(Box::new(f))),
            inner.prop_map(|f| Ltl::Globally(Box::new(f))),
        ]
    })
}

// ---------- σ-types ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn saturation_is_idempotent(ty in type_strategy(3)) {
        let schema = Schema::empty();
        if let Ok(once) = ty.saturate(&schema) {
            let twice = once.saturate(&schema).expect("saturation stays satisfiable");
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn saturation_preserves_satisfiability(ty in type_strategy(3)) {
        let schema = Schema::empty();
        let sat1 = ty.is_satisfiable(&schema);
        match ty.saturate(&schema) {
            Ok(s) => {
                prop_assert!(sat1);
                prop_assert!(s.is_satisfiable(&schema));
            }
            Err(_) => prop_assert!(!sat1),
        }
    }

    #[test]
    fn restriction_preserves_satisfiability(ty in type_strategy(3)) {
        let schema = Schema::empty();
        if ty.is_satisfiable(&schema) {
            let r = ty.restrict_registers(&schema, 2).expect("satisfiable");
            prop_assert!(r.is_satisfiable(&schema));
        }
    }

    #[test]
    fn completions_are_complete_and_extend(ty in type_strategy(2)) {
        let schema = Schema::empty();
        if ty.is_satisfiable(&schema) {
            let comps = ty.completions(&schema).expect("satisfiable");
            prop_assert!(!comps.is_empty());
            let base = ty.saturate(&schema).expect("satisfiable");
            for c in comps {
                prop_assert!(c.is_complete(&schema).expect("satisfiable"));
                // every literal of the saturated base is retained
                for lit in base.literals() {
                    prop_assert!(c.contains(lit), "completion must extend the type");
                }
            }
        }
    }

    #[test]
    fn joint_satisfiability_symmetric_shape(a in type_strategy(2), b in type_strategy(2)) {
        let schema = Schema::empty();
        if a.is_satisfiable(&schema) && b.is_satisfiable(&schema) {
            // joint satisfiability implies each side satisfiable, and the
            // empty type composes with everything.
            let top = SigmaType::empty(2);
            prop_assert!(top.jointly_satisfiable_with(&top, &schema));
            let _ = a.jointly_satisfiable_with(&b, &schema); // no panic
        }
    }
}

// ---------- regular expressions and automata ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nfa_and_dfa_agree(r in regex_strategy(), words in prop::collection::vec(prop::collection::vec(0u8..3, 0..6), 1..8)) {
        let nfa = Nfa::from_regex(&r);
        let dfa = Dfa::from_regex(&r, &[0, 1, 2]);
        for w in &words {
            prop_assert_eq!(nfa.accepts(w), dfa.accepts(w), "word {:?}", w);
        }
    }

    #[test]
    fn minimization_preserves_language(r in regex_strategy(), words in prop::collection::vec(prop::collection::vec(0u8..3, 0..6), 1..8)) {
        let dfa = Dfa::from_regex(&r, &[0, 1, 2]);
        let min = dfa.minimize();
        prop_assert!(min.num_states() <= dfa.num_states());
        for w in &words {
            prop_assert_eq!(dfa.accepts(w), min.accepts(w));
        }
    }

    #[test]
    fn complement_is_involution_on_words(r in regex_strategy(), w in prop::collection::vec(0u8..3, 0..6)) {
        let dfa = Dfa::from_regex(&r, &[0, 1, 2]);
        prop_assert_eq!(dfa.accepts(&w), !dfa.complement().accepts(&w));
        prop_assert_eq!(dfa.accepts(&w), dfa.complement().complement().accepts(&w));
    }

    #[test]
    fn lasso_transformations_preserve_word(
        prefix in prop::collection::vec(0u8..3, 0..4),
        cycle in prop::collection::vec(0u8..3, 1..4),
        pump in 1usize..4,
        extend in 0usize..4,
    ) {
        let l = Lasso::new(prefix, cycle);
        prop_assert!(l.same_word(&l.pump_cycle(pump)));
        prop_assert!(l.same_word(&l.extend_prefix(extend)));
        prop_assert!(l.same_word(&l.canonicalize()));
        // unroll agreement
        let c = l.canonicalize();
        prop_assert_eq!(l.unroll(12), c.unroll(12));
    }
}

// ---------- LTL translation vs reference semantics ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ltl_automaton_matches_reference(
        f in ltl_strategy(),
        prefix in prop::collection::vec(0u8..4, 0..3),
        cycle in prop::collection::vec(0u8..4, 1..3),
    ) {
        // letters are bitmasks over props {0, 1}
        let word = Lasso::new(prefix, cycle);
        let auto = ltl_to_automaton(&f);
        let labels = |l: &u8, p: &u8| l & (1 << p) != 0;
        let by_auto = auto.accepts_lasso(&word, labels);
        let by_ref = f.eval_lasso(word.prefix.len(), word.cycle.len(), &|m, p| {
            labels(word.at(m), p)
        });
        prop_assert_eq!(by_auto, by_ref, "formula {} on {}", f, word);
    }
}

// ---------- monitor vs brute force ----------

/// Brute-force oracle: check every factor of the run against every
/// constraint DFA directly.
fn brute_force_ok(ext: &ExtendedAutomaton, states: &[StateId], values: &[Value]) -> bool {
    let len = states.len();
    for c in ext.constraints() {
        for n in 0..len {
            let mut s = c.dfa().init();
            for m in n..len {
                s = c.dfa().step(s, &states[m]);
                if c.dfa().is_accepting(s) {
                    let (a, b) = (values[n], values[m]);
                    let ok = match c.kind {
                        ConstraintKind::Equal => a == b,
                        ConstraintKind::NotEqual => a != b,
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn two_state_automaton() -> RegisterAutomaton {
    let mut ra = RegisterAutomaton::new(1, Schema::empty());
    let p = ra.add_state("p");
    let q = ra.add_state("q");
    ra.set_initial(p);
    ra.set_accepting(p);
    for (a, b) in [(p, p), (p, q), (q, p), (q, q)] {
        ra.add_transition(a, SigmaType::empty(1), b).unwrap();
    }
    ra
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn monitor_agrees_with_brute_force(
        kinds in prop::collection::vec(prop::bool::ANY, 1..3),
        shapes in prop::collection::vec((0u32..2, 0u32..2, 0u32..2), 1..3),
        state_bits in prop::collection::vec(prop::bool::ANY, 1..7),
        value_ids in prop::collection::vec(0u64..3, 1..7),
    ) {
        prop_assume!(state_bits.len() == value_ids.len());
        let ra = two_state_automaton();
        let mut ext = ExtendedAutomaton::new(ra);
        for (i, &(a, b, c)) in shapes.iter().enumerate() {
            let kind = if kinds[i % kinds.len()] {
                ConstraintKind::Equal
            } else {
                ConstraintKind::NotEqual
            };
            let regex = Regex::Concat(vec![
                Regex::Sym(StateId(a)),
                Regex::Star(Box::new(Regex::Sym(StateId(b)))),
                Regex::Sym(StateId(c)),
            ]);
            ext.add_constraint(kind, RegIdx(0), RegIdx(0), regex).unwrap();
        }
        let states: Vec<StateId> = state_bits.iter().map(|&b| StateId(u32::from(b))).collect();
        let values: Vec<Value> = value_ids.iter().map(|&v| Value(v)).collect();

        let mut monitor = ConstraintMonitor::new(&ext);
        let mut monitor_ok = true;
        for (s, v) in states.iter().zip(values.iter()) {
            if monitor.step(&ext, *s, &[*v]).is_some() {
                monitor_ok = false;
                break;
            }
        }
        prop_assert_eq!(monitor_ok, brute_force_ok(&ext, &states, &values));
    }
}
