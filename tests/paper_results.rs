//! The reproduction checklist: one test per claim of the paper, asserting
//! the formal result end-to-end through the library's public API.
//!
//! Paper: *Projection Views of Register Automata*, Segoufin & Vianu,
//! PODS 2020. Section/therorem anchors are noted on each test.

use rega_analysis::emptiness::{check_emptiness, EmptinessOptions, EmptinessVerdict};
use rega_analysis::lr::{is_lr_bounded, LrOptions};
use rega_analysis::verify::{verify, VerifyOptions};
use rega_automata::Lasso;
use rega_core::extended::ConstraintKind;
use rega_core::simulate::{self, SearchLimits};
use rega_core::transform::{complete, state_driven};
use rega_core::{paper, ExtendedAutomaton, TransId};
use rega_data::{Database, Qf, QfTerm, RegIdx, Schema, Value};
use rega_logic::LtlFo;
use rega_views::counterexamples;
use rega_views::prop20::project_register_automaton;
use rega_views::prop6::eliminate_global_equalities;
use rega_views::thm24::{project_hiding_database, Thm24Options};

fn limits() -> SearchLimits {
    SearchLimits {
        max_nodes: 2_000_000,
        max_runs: 500_000,
    }
}

/// §2 (Koutsos–Vianu, re-proved in Thm 9 stage 1): `Control(A) =
/// SControl(A)` — every symbolic control trace is realized by a run over
/// some finite database. Checked on Example 1 and Example 23 by turning
/// enumerated symbolic lassos into witnesses.
#[test]
fn control_equals_scontrol() {
    for (name, ra) in [
        ("example1", paper::example1().0),
        ("example23", paper::example23()),
    ] {
        let ext = ExtendedAutomaton::new(ra);
        let nba = rega_core::symbolic::scontrol_nba(ext.ra()).unwrap();
        let lassos = rega_automata::emptiness::enumerate_accepting_lassos(&nba, 8, 6);
        assert!(!lassos.is_empty(), "{name} has symbolic traces");
        for control in lassos {
            let w = rega_analysis::emptiness::witness_for_lasso(
                &ext,
                &control,
                &EmptinessOptions::default(),
            )
            .unwrap();
            let w =
                w.unwrap_or_else(|| panic!("{name}: symbolic trace {control} must be realizable"));
            assert!(w.prefix_run.validate(ext.ra(), &w.database).is_ok());
        }
    }
}

/// §3, Example 4: no register automaton expresses `Π₁(Reg(A))` of
/// Example 1 — executable core: the unconstrained candidate is refuted,
/// and the probe traces separate.
#[test]
fn example4_projection_not_expressible_by_ra() {
    let mut free = rega_core::RegisterAutomaton::new(1, Schema::empty());
    let p1 = free.add_state("p1");
    let p2 = free.add_state("p2");
    free.set_initial(p1);
    free.set_accepting(p1);
    for (a, b) in [(p1, p2), (p2, p2), (p2, p1)] {
        free.add_transition(a, rega_data::SigmaType::empty(1), b)
            .unwrap();
    }
    let refuted = counterexamples::refute_view_candidate(
        &ExtendedAutomaton::new(free),
        4,
        &[Value(1), Value(2)],
        limits(),
    )
    .unwrap();
    assert!(refuted);
}

/// §3, Example 5: the extended automaton with `e=₁₁ = p1 p2* p1` *does*
/// express the projection.
#[test]
fn example5_extended_automaton_is_the_view() {
    let candidate = paper::example5();
    for len in 2..=4 {
        assert!(!counterexamples::refute_view_candidate(
            &candidate,
            len,
            &[Value(1), Value(2)],
            limits()
        )
        .unwrap());
    }
}

/// Proposition 6: equality constraints are eliminable with extra registers;
/// the projection of the result reproduces the original traces.
#[test]
fn prop6_equality_elimination() {
    let ext = paper::example5();
    let r = eliminate_global_equalities(&ext).unwrap();
    assert!(r
        .automaton
        .constraints()
        .iter()
        .all(|c| c.kind == ConstraintKind::NotEqual));
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    for len in 1..=3 {
        let want = simulate::projected_settled_traces(&ext, &db, len, 1, &pool, limits());
        let got = simulate::projected_settled_traces(&r.automaton, &db, len, 1, &pool, limits());
        assert_eq!(want, got, "length {len}");
    }
}

/// Example 7 / Example 17: the all-distinct extended automaton has runs
/// (prefixes of every length) but no ultimately periodic ones, and is not
/// LR-bounded — hence not a projection of any register automaton (Thm 19).
#[test]
fn example7_not_a_projection() {
    let (prefix, has_lasso) = counterexamples::example7_separation(6, limits()).unwrap();
    assert!(prefix.is_some());
    assert!(!has_lasso);
    let lr = is_lr_bounded(&paper::example7(), &LrOptions::default()).unwrap();
    assert!(!lr.bounded);
}

/// Example 8: the state traces of extended automata need not be ω-regular —
/// the longest `p`-block is bounded by the database size.
#[test]
fn example8_non_regular_state_traces() {
    let b1 = counterexamples::example8_longest_p_block(1, limits());
    let b2 = counterexamples::example8_longest_p_block(2, limits());
    let b3 = counterexamples::example8_longest_p_block(3, limits());
    assert_eq!((b1, b2, b3), (2, 3, 4), "block bound tracks |P|");
}

/// Corollary 10: emptiness is decidable — positive and negative instances.
#[test]
fn corollary10_emptiness() {
    // Non-empty: Examples 1, 5, 7, 8, 23.
    for (name, ext) in [
        ("example1", ExtendedAutomaton::new(paper::example1().0)),
        ("example5", paper::example5()),
        ("example7", paper::example7()),
        ("example8", paper::example8()),
        ("example23", ExtendedAutomaton::new(paper::example23())),
    ] {
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(v.is_nonempty(), "{name} must be non-empty");
    }
    // Empty: contradictory constraints.
    let mut ext = paper::example5();
    ext.add_constraint_str(ConstraintKind::NotEqual, RegIdx(0), RegIdx(0), "p1 p2* p1")
        .unwrap();
    assert!(!check_emptiness(&ext, &EmptinessOptions::default())
        .unwrap()
        .is_nonempty());
}

/// Theorem 12: LTL-FO verification is decidable; spot-check both verdicts
/// on Example 1.
#[test]
fn theorem12_verification() {
    let ext = ExtendedAutomaton::new(paper::example1().0);
    let holds = LtlFo::new(
        "G stable2",
        [("stable2", Qf::Eq(QfTerm::x(1), QfTerm::y(1)))],
    )
    .unwrap();
    assert!(verify(&ext, &holds, &VerifyOptions::default())
        .unwrap()
        .holds());
    let fails = LtlFo::new(
        "G stable1",
        [("stable1", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))],
    )
    .unwrap();
    assert!(!verify(&ext, &fails, &VerifyOptions::default())
        .unwrap()
        .holds());
}

/// Theorem 13 / Proposition 20: projections of register automata are
/// expressible as (LR-bounded) extended automata — differential check plus
/// LR-boundedness on Example 1.
#[test]
fn theorem13_projection_closure() {
    let (ra, _) = paper::example1();
    let proj = project_register_automaton(&ra, 1).unwrap();
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];
    let original = ExtendedAutomaton::new(ra);
    for len in 1..=4 {
        let want = simulate::projected_settled_traces(&original, &db, len, 1, &pool, limits());
        let got = simulate::projected_settled_traces(&proj.view, &db, len, 1, &pool, limits());
        assert_eq!(want, got, "length {len}");
    }
    let lr = is_lr_bounded(&proj.view, &LrOptions::default()).unwrap();
    assert!(lr.bounded, "Proposition 20: projections are LR-bounded");
}

/// Theorem 18: LR-boundedness is decidable — the paper's Example 16 pair.
#[test]
fn theorem18_lr_boundedness() {
    assert!(
        is_lr_bounded(&paper::example16_a(), &LrOptions::default())
            .unwrap()
            .bounded
    );
    assert!(
        !is_lr_bounded(&paper::example16_a_prime(), &LrOptions::default())
            .unwrap()
            .bounded
    );
}

/// Theorem 19 (via Prop 22's streaming engine): on an LR-bounded automaton
/// the inequality obligations fit in `2M² + 1` slots; on Example 16's 𝒜′
/// they cannot.
#[test]
fn theorem19_streaming_dichotomy() {
    use rega_core::run::{Config, LassoRun};
    use rega_core::StateId;
    let bounded = paper::example16_a();
    let run = LassoRun::new(
        vec![
            Config::new(StateId(0), vec![Value(1)]),
            Config::new(StateId(0), vec![Value(2)]),
        ],
        vec![TransId(0), TransId(0)],
        0,
    );
    let (report, is_bounded) =
        rega_views::prop22::enforce_with_derived_bound(&bounded, &run, 16).unwrap();
    assert!(is_bounded && report.within_budget && report.accepted);

    let unbounded = paper::example16_a_prime();
    let p = unbounded.ra().state_by_name("p").unwrap();
    let t_pp = unbounded
        .ra()
        .outgoing(p)
        .iter()
        .copied()
        .find(|&t| unbounded.ra().transition(t).to == p)
        .unwrap();
    let run = LassoRun::new(
        vec![
            Config::new(p, vec![Value(1)]),
            Config::new(p, vec![Value(2)]),
        ],
        vec![t_pp, t_pp],
        0,
    );
    let report = rega_views::prop22::enforce_lasso(&unbounded, &run, 2, 32).unwrap();
    assert!(!report.within_budget);
}

/// Example 23: with a visible database, extended automata cannot express
/// the projection — removing the only edge flips realizability while the
/// candidate trace stays locally identical (the paper's argument).
#[test]
fn example23_database_projection_argument() {
    let a = paper::example23();
    let schema = a.schema().clone();
    let e = schema.relation("E").unwrap();
    let u = schema.relation("U").unwrap();
    let mut db = Database::new(schema);
    let (c, d0, d1) = (Value(100), Value(0), Value(1));
    db.insert(e, vec![c, d0]).unwrap();
    db.insert(u, vec![d0]).unwrap();
    db.insert(u, vec![d1]).unwrap();
    let ext = ExtendedAutomaton::new(a);
    let probe = Lasso::periodic(vec![vec![d0], vec![d1]]);
    let pool = vec![c, d0, d1];
    // d0 d1 d0 d1 … is realizable over D…
    let over_d = simulate::find_lasso_with_projection(&ext, &db, &probe, &pool, 10, limits())
        .unwrap()
        .is_some();
    assert!(over_d);
    // …but not over D′ = D without the edge.
    db.remove(e, &[c, d0]);
    let over_d_prime = simulate::find_lasso_with_projection(&ext, &db, &probe, &pool, 10, limits())
        .unwrap()
        .is_some();
    assert!(!over_d_prime, "no node points at the even positions");
}

/// Theorem 24: the database-hiding projection — the enhanced view covers
/// the concrete-database traces and rejects the clash pattern.
#[test]
fn theorem24_database_hiding() {
    let a = paper::example23();
    let proj = project_hiding_database(&a, 1, &Thm24Options::default()).unwrap();
    assert!(proj.view.ext().ra().has_no_database());
    assert_eq!(proj.view.finiteness_constraints().len(), 1);
    assert!(!proj.view.tuple_inequalities().is_empty());
}

/// The normal forms of §2 exist and preserve a run (Examples 2, 3).
#[test]
fn section2_normal_forms() {
    let (a, _) = paper::example1();
    let completed = complete(&a).unwrap();
    assert!(completed.is_complete().unwrap());
    let sd = state_driven(&completed);
    assert!(sd.automaton.is_state_driven());
    // The normalized automaton still has runs.
    let v = check_emptiness(
        &ExtendedAutomaton::new(sd.automaton),
        &EmptinessOptions::default(),
    )
    .unwrap();
    assert!(v.is_nonempty());
}

/// The workflow of §1 ties it together: model, emptiness, views.
#[test]
fn section1_workflow_views() {
    let bundle = rega_workflow::views::with_views().unwrap();
    let lr = is_lr_bounded(&bundle.author.view, &LrOptions::default()).unwrap();
    assert!(lr.bounded);
    let v = check_emptiness(
        &ExtendedAutomaton::new(bundle.workflow.automaton),
        &EmptinessOptions::default(),
    )
    .unwrap();
    match v {
        EmptinessVerdict::NonEmpty(w) => {
            assert!(w.lasso_run.is_some(), "the workflow has periodic runs")
        }
        EmptinessVerdict::Empty => panic!("the workflow has runs"),
    }
}
