//! Differential test: the sharded streaming engine must report exactly the
//! per-session verdicts that the batch path (walking each session's events
//! sequentially with `rega_core`'s transition relation and
//! `ConstraintMonitor`) produces — for random interleaved multi-session
//! streams, including sessions that start late (out-of-order arrival
//! relative to each other) and sessions evicted mid-stream by a terminal
//! event with trailing post-eviction traffic.

use proptest::prelude::*;
use rega_core::monitor::ConstraintMonitor;
use rega_core::spec::parse_spec;
use rega_core::ExtendedAutomaton;
use rega_data::{Database, Schema, Value};
use rega_stream::{CompiledSpec, Engine, EngineConfig, Event, SessionStatus};
use std::sync::Arc;

/// The monitored specification: two registers, nondeterministic control,
/// a σ-type restriction (`p → p` keeps register 1), and a global equality
/// constraint over factors `p p p`, so the incremental monitor genuinely
/// participates in the verdicts.
fn spec_text() -> &'static str {
    "\
registers 2
state p init accept
state q accept
trans p -> p : x1 = y1
trans p -> q :
trans q -> p :
trans q -> q : x2 != y2
constraint eq 1 1 : p p p
"
}

/// One session's event, pre-demultiplexed.
#[derive(Clone, Debug)]
enum SessEvent {
    Step(&'static str, Vec<Value>),
    End,
}

/// Coarse verdict for comparison (the engine's kinds are richer, but the
/// batch reference is deliberately built from `rega_core` primitives only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Active,
    Ended,
    Violated,
}

/// The batch path: walk one session's events in order against the raw
/// automaton — initial-state membership, transition-relation membership
/// via `SigmaType::satisfied_by`, and a `ConstraintMonitor` — with no
/// engine code involved. Returns the verdict and how many events the
/// session consumed (events after eviction are not consumed).
fn batch_verdict(ext: &ExtendedAutomaton, db: &Database, events: &[SessEvent]) -> (Verdict, u64) {
    let ra = ext.ra();
    let mut monitor = ConstraintMonitor::new(ext);
    let mut cur: Option<(rega_core::StateId, Vec<Value>)> = None;
    let mut consumed = 0u64;
    for ev in events {
        consumed += 1;
        match ev {
            SessEvent::End => return (Verdict::Ended, consumed),
            SessEvent::Step(state, regs) => {
                let Some(sid) = ra.state_by_name(state) else {
                    return (Verdict::Violated, consumed);
                };
                let ok = match &cur {
                    None => ra.initial_states().any(|s| s == sid),
                    Some((from, pre)) => ra.outgoing(*from).iter().any(|&t| {
                        let tr = ra.transition(t);
                        tr.to == sid && tr.ty.satisfied_by(db, pre, regs)
                    }),
                };
                if !ok || monitor.step(ext, sid, regs).is_some() {
                    return (Verdict::Violated, consumed);
                }
                cur = Some((sid, regs.clone()));
            }
        }
    }
    (Verdict::Active, consumed)
}

fn coarse(status: &SessionStatus) -> Verdict {
    match status {
        SessionStatus::Active => Verdict::Active,
        SessionStatus::Ended => Verdict::Ended,
        SessionStatus::Violated(_) => Verdict::Violated,
    }
}

/// A generated session: its step events, and an optional position at which
/// a terminal event is spliced in (events after it exercise the
/// post-eviction path).
#[derive(Clone, Debug)]
struct GenSession {
    steps: Vec<(bool, u64, u64)>, // (state is q, reg1, reg2)
    end_at: usize,                // ≥ steps.len() means "never ends"
}

impl GenSession {
    fn events(&self) -> Vec<SessEvent> {
        let mut out = Vec::new();
        for (i, &(is_q, r1, r2)) in self.steps.iter().enumerate() {
            if i == self.end_at {
                out.push(SessEvent::End);
            }
            let state = if is_q { "q" } else { "p" };
            out.push(SessEvent::Step(state, vec![Value(r1), Value(r2)]));
        }
        // `end_at == len` closes the session after its last step;
        // `end_at > len` leaves it open.
        if self.end_at == self.steps.len() {
            out.push(SessEvent::End);
        }
        out
    }
}

fn session_strategy() -> impl Strategy<Value = GenSession> {
    (
        prop::collection::vec((proptest::bool::ANY.boxed(), 0u64..3, 0u64..3), 1..9),
        0usize..12,
    )
        .prop_map(|(steps, end_at)| GenSession { steps, end_at })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_agrees_with_batch_path(
        sessions in prop::collection::vec(session_strategy(), 1..6),
        picks in prop::collection::vec(0usize..6, 0..64),
        shards in 1usize..5,
        workers in 1usize..5,
    ) {
        let ext = parse_spec(spec_text()).unwrap();
        let db = Database::new(Schema::empty());

        // Batch path, per session in isolation.
        let expected: Vec<(Verdict, u64)> = sessions
            .iter()
            .map(|s| batch_verdict(&ext, &db, &s.events()))
            .collect();

        // Streaming path: interleave all sessions' events using the
        // generated picks (sessions therefore start at arbitrary points of
        // the global stream), then drain round-robin.
        let spec = Arc::new(
            CompiledSpec::compile(ext, db, None).unwrap()
        );
        let mut engine = Engine::start(spec, EngineConfig {
            shards,
            workers,
            queue_capacity: 8,
            max_view_frontier: 8,
            ..EngineConfig::default()
        });
        let mut queues: Vec<std::collections::VecDeque<SessEvent>> = sessions
            .iter()
            .map(|s| s.events().into())
            .collect();
        let submit = |engine: &mut Engine, sess: usize, ev: SessEvent| {
            let session = format!("s{sess}");
            engine
                .submit(match ev {
                    SessEvent::End => Event::End { session },
                    SessEvent::Step(state, regs) => Event::Step {
                        session,
                        state: state.to_string(),
                        regs,
                    },
                })
                .expect("submit");
        };
        for &p in &picks {
            let nonempty: Vec<usize> = (0..queues.len())
                .filter(|&i| !queues[i].is_empty())
                .collect();
            if nonempty.is_empty() {
                break;
            }
            let sess = nonempty[p % nonempty.len()];
            let ev = queues[sess].pop_front().unwrap();
            submit(&mut engine, sess, ev);
        }
        for (sess, queue) in queues.iter_mut().enumerate() {
            while let Some(ev) = queue.pop_front() {
                submit(&mut engine, sess, ev);
            }
        }
        let report = engine.finish();

        prop_assert_eq!(report.outcomes.len(), sessions.len());
        for (sess, &(want, want_events)) in expected.iter().enumerate() {
            let name = format!("s{sess}");
            let outcome = report
                .outcomes
                .iter()
                .find(|o| o.session == name)
                .expect("every submitted session is reported");
            prop_assert_eq!(
                coarse(&outcome.status),
                want,
                "session {} verdict mismatch (outcome {:?})",
                sess,
                outcome
            );
            prop_assert_eq!(
                outcome.events,
                want_events,
                "session {} consumed-event count mismatch",
                sess
            );
        }
    }
}
