//! Adversarial tests for the resource-governance layer.
//!
//! Every governed entry point in the stack — completion, the state-driven
//! normal form, the `SControl` NBA, emptiness, class structures, the chase,
//! all three projection constructions, and stream-spec compilation — is fed
//! an input whose ungoverned construction blows up combinatorially:
//!
//! * the *completion bomb*: a one-state automaton whose single transition
//!   carries the empty σ-type over `k` registers, so completion must
//!   enumerate all Bell(2k) saturated completions (minutes of work at
//!   `k = 6`, hours beyond);
//! * the *dense control graph*: a fully connected `n`-state automaton,
//!   whose `SControl` wiring is quadratic in the `n²` transitions.
//!
//! The properties checked, per the governor's contract:
//!
//! * with a node ceiling set, every entry point returns a typed
//!   [`GovernError`] and never expands more than one node past the
//!   ceiling (the trip refuses the `max + 1`-th expansion);
//! * with only a deadline set, the error comes back within twice the
//!   deadline (the stride-amortized slow check bounds the overshoot);
//! * a [`CancelToken`](rega_core::CancelToken) flipped from another thread
//!   interrupts a construction mid-flight with `GovernError::Cancelled`.

use proptest::prelude::*;
use rega_analysis::chase::universal_witness_database_governed;
use rega_analysis::emptiness::check_emptiness_governed;
use rega_analysis::{ClassStructure, EmptinessOptions};
use rega_automata::Lasso;
use rega_core::symbolic::scontrol_nba_governed;
use rega_core::transform::{complete_governed, state_driven_governed};
use rega_core::{
    paper, Budget, BudgetSpec, CoreError, ExtendedAutomaton, GovernError, RegisterAutomaton,
    StateId,
};
use rega_data::{Database, SatCache, Schema, SigmaType};
use rega_stream::CompiledSpec;
use rega_views::thm24::Thm24Options;
use rega_views::{
    project_extended_governed, project_hiding_database_governed,
    project_register_automaton_governed,
};
use std::time::{Duration, Instant};

/// One state, one self-loop carrying the empty σ-type over `k` registers:
/// completion must enumerate every saturated completion of the empty type
/// — Bell(2k) of them — before any construction built on it can finish.
fn completion_bomb(k: u16) -> RegisterAutomaton {
    let mut ra = RegisterAutomaton::new(k, Schema::empty());
    let p = ra.add_state("p");
    ra.set_initial(p);
    ra.set_accepting(p);
    ra.add_transition(p, SigmaType::empty(k), p).unwrap();
    ra
}

/// A fully connected `n`-state register-free automaton: `n²` transitions,
/// so the `SControl` wiring loop alone visits `n⁴` pairs.
fn dense_control(n: usize) -> RegisterAutomaton {
    let mut ra = RegisterAutomaton::new(0, Schema::empty());
    let states: Vec<StateId> = (0..n).map(|i| ra.add_state(&format!("s{i}"))).collect();
    ra.set_initial(states[0]);
    ra.set_accepting(states[n - 1]);
    for &u in &states {
        for &v in &states {
            ra.add_transition(u, SigmaType::empty(0), v).unwrap();
        }
    }
    ra
}

type Entry = (&'static str, Box<dyn Fn(&Budget) -> Result<(), CoreError>>);

/// Every governed entry point, each paired with an adversarial input that
/// is guaranteed to attempt more governed expansions than any ceiling the
/// sweep below draws (≥ 2500 ticks each). Caches are created fresh inside
/// each closure: budget trips are never memoized, and a warm cache must
/// not let a later case skip the loop under test.
fn entry_points() -> Vec<Entry> {
    vec![
        (
            "transform.complete",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                complete_governed(&completion_bomb(6), &cache, b).map(|_| ())
            }),
        ),
        (
            "transform.state_driven",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                state_driven_governed(&dense_control(51), &cache, b).map(|_| ())
            }),
        ),
        (
            "symbolic.scontrol_nba",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                scontrol_nba_governed(&dense_control(51), &cache, b).map(|_| ())
            }),
        ),
        (
            "emptiness.check",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                let ext = ExtendedAutomaton::new(dense_control(51));
                check_emptiness_governed(&ext, &EmptinessOptions::default(), &cache, b).map(|_| ())
            }),
        ),
        (
            "classes.build",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                let (ra, ts) = paper::example1();
                let ext = ExtendedAutomaton::new(ra);
                let w = Lasso::periodic(vec![ts[0], ts[1], ts[1], ts[2]]);
                ClassStructure::build_governed(&ext, &w, 50_000, &cache, b).map(|_| ())
            }),
        ),
        (
            "chase.universal_witness",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                let ext = ExtendedAutomaton::new(dense_control(51));
                universal_witness_database_governed(&ext, &EmptinessOptions::default(), &cache, b)
                    .map(|_| ())
            }),
        ),
        (
            "views.prop20",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                project_register_automaton_governed(&completion_bomb(6), 2, &cache, b).map(|_| ())
            }),
        ),
        (
            "views.thm13",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                let ext = ExtendedAutomaton::new(completion_bomb(6));
                project_extended_governed(&ext, 2, &cache, b).map(|_| ())
            }),
        ),
        (
            "views.thm24",
            Box::new(|b| {
                let cache = SatCache::new(Schema::empty());
                project_hiding_database_governed(
                    &completion_bomb(5),
                    2,
                    &Thm24Options::default(),
                    &cache,
                    b,
                )
                .map(|_| ())
            }),
        ),
        (
            "stream.compile",
            Box::new(|b| {
                let ext = ExtendedAutomaton::new(completion_bomb(6));
                let db = Database::new(Schema::empty());
                CompiledSpec::compile_governed(ext, db, Some(2), b).map(|_| ())
            }),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Sweep every governed entry point under a randomly drawn node
    // ceiling (with a deadline as backstop): each must come back with a
    // typed `GovernError` carrying a non-empty phase, without ever
    // expanding more than one node past the ceiling, and without
    // overshooting twice the deadline.
    #[test]
    fn every_entry_point_trips_within_limits(
        max_nodes in 200u64..2000,
        deadline_ms in 200u64..400,
    ) {
        for (name, run) in entry_points() {
            let budget = Budget::start(&BudgetSpec {
                deadline_ms: Some(deadline_ms),
                max_nodes: Some(max_nodes),
                max_types: None,
            });
            let started = Instant::now();
            let res = run(&budget);
            let elapsed = started.elapsed().as_millis() as u64;
            match res {
                Err(CoreError::Govern(g)) => {
                    prop_assert!(
                        !g.phase().is_empty(),
                        "{name}: trip must name the phase it fired in"
                    );
                    prop_assert!(
                        matches!(g.kind(), "nodes" | "deadline"),
                        "{name}: unexpected trip kind {:?}",
                        g.kind()
                    );
                }
                Ok(()) => prop_assert!(
                    false,
                    "{name}: adversarial input completed under a {max_nodes}-node ceiling"
                ),
                Err(other) => prop_assert!(
                    false,
                    "{name}: expected a GovernError, got {other:?}"
                ),
            }
            prop_assert!(
                budget.nodes() <= max_nodes + 1,
                "{name}: expanded {} nodes against a ceiling of {max_nodes}",
                budget.nodes()
            );
            prop_assert!(
                elapsed <= 2 * deadline_ms,
                "{name}: took {elapsed} ms against a {deadline_ms} ms deadline"
            );
        }
    }

    // With only a deadline set, the completion bomb must be cut off
    // within twice the deadline — the stride-amortized check bounds the
    // overshoot — and the error must carry honest diagnostics.
    #[test]
    fn deadline_alone_trips_within_twice_deadline(
        deadline_ms in 100u64..250,
        k in 6u16..8,
    ) {
        let cache = SatCache::new(Schema::empty());
        let budget = Budget::start(&BudgetSpec {
            deadline_ms: Some(deadline_ms),
            max_nodes: None,
            max_types: None,
        });
        let started = Instant::now();
        let res = project_register_automaton_governed(&completion_bomb(k), 2, &cache, &budget);
        let elapsed = started.elapsed().as_millis() as u64;
        match res {
            Err(CoreError::Govern(g @ GovernError::DeadlineExceeded { .. })) => {
                prop_assert!(g.elapsed_ms() >= deadline_ms);
                prop_assert!(g.nodes() > 0, "diagnostics must report partial progress");
            }
            other => prop_assert!(false, "expected DeadlineExceeded, got {other:?}"),
        }
        prop_assert!(
            elapsed <= 2 * deadline_ms,
            "took {elapsed} ms against a {deadline_ms} ms deadline"
        );
    }
}

/// A node ceiling of `N` means at most `N` expansions happen: the governor
/// refuses the `N+1`-th tick, and the error reports exactly where the
/// counter stood.
#[test]
fn node_ceiling_is_exact() {
    let cache = SatCache::new(Schema::empty());
    let budget = Budget::start(&BudgetSpec {
        deadline_ms: None,
        max_nodes: Some(777),
        max_types: None,
    });
    let err = complete_governed(&completion_bomb(6), &cache, &budget).unwrap_err();
    match err {
        CoreError::Govern(g @ GovernError::NodeBudgetExceeded { .. }) => {
            assert_eq!(g.nodes(), 778, "trip fires on the refused expansion");
        }
        other => panic!("expected NodeBudgetExceeded, got {other:?}"),
    }
    assert_eq!(budget.nodes(), 778);
}

/// Flipping the cancellation token from another thread interrupts an
/// otherwise-unbounded emptiness check mid-construction: the dense control
/// graph keeps the on-the-fly expansion busy for well over the cancel
/// delay (seconds, uncancelled), yet the check returns `Cancelled` almost
/// immediately after the flip.
#[test]
fn cancellation_from_another_thread_interrupts_emptiness() {
    let cache = SatCache::new(Schema::empty());
    let ext = ExtendedAutomaton::new(dense_control(150));
    let budget = Budget::start(&BudgetSpec {
        deadline_ms: None,
        max_nodes: None,
        max_types: None,
    });
    let token = budget.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
    });
    let started = Instant::now();
    let res = check_emptiness_governed(&ext, &EmptinessOptions::default(), &cache, &budget);
    canceller.join().unwrap();
    match res {
        Err(CoreError::Govern(g @ GovernError::Cancelled { .. })) => {
            assert!(!g.phase().is_empty());
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation must cut the construction short"
    );
    assert!(budget.cancel_token().is_cancelled());
}

/// A budget trip mid on-the-fly search is a *typed* error carrying the
/// phase it fired in and partial-progress diagnostics — never a panic, a
/// wrong verdict, or a silent truncation.
#[test]
fn on_the_fly_trip_is_typed_with_phase_and_progress() {
    let cache = SatCache::new(Schema::empty());
    let ext = ExtendedAutomaton::new(dense_control(51));
    let budget = Budget::start(&BudgetSpec {
        deadline_ms: None,
        max_nodes: Some(500),
        max_types: None,
    });
    let err = check_emptiness_governed(&ext, &EmptinessOptions::default(), &cache, &budget)
        .expect_err("500 ticks cannot cover a 2601-letter expansion");
    match err {
        CoreError::Govern(g @ GovernError::NodeBudgetExceeded { .. }) => {
            assert!(
                g.phase().starts_with("emptiness.on_the_fly"),
                "trip must name the on-the-fly phase, got {:?}",
                g.phase()
            );
            assert!(g.nodes() > 0, "diagnostics carry the tick count");
            assert_eq!(g.nodes(), 501, "trip fires on the refused tick");
        }
        other => panic!("expected NodeBudgetExceeded, got {other:?}"),
    }
    assert_eq!(budget.nodes(), 501);
}

/// A tripped search memoizes nothing: re-running against the *same* cache
/// with the budget lifted returns exactly the verdict and witness a fresh
/// cache produces.
#[test]
fn on_the_fly_trip_never_memoizes_into_the_cache() {
    use rega_analysis::emptiness::EmptinessVerdict;
    let ext = ExtendedAutomaton::new(dense_control(51));
    let opts = EmptinessOptions::default();

    let shared = SatCache::new(Schema::empty());
    let tight = Budget::start(&BudgetSpec {
        deadline_ms: None,
        max_nodes: Some(500),
        max_types: None,
    });
    check_emptiness_governed(&ext, &opts, &shared, &tight).expect_err("must trip");

    let warm = check_emptiness_governed(&ext, &opts, &shared, &Budget::unlimited()).unwrap();
    let fresh = check_emptiness_governed(
        &ext,
        &opts,
        &SatCache::new(Schema::empty()),
        &Budget::unlimited(),
    )
    .unwrap();
    match (&warm, &fresh) {
        (EmptinessVerdict::NonEmpty(a), EmptinessVerdict::NonEmpty(b)) => {
            assert_eq!(a.control, b.control, "tripped cache changed the witness");
        }
        (EmptinessVerdict::Empty, EmptinessVerdict::Empty) => {}
        _ => panic!("tripped cache changed the verdict"),
    }
}

/// Driving the lazy source directly: a node ceiling of `N` leaves at most
/// `N + 1` states expanded in the arena (each expansion ticks at least
/// once per alphabet letter), and the tripped expansion itself is *not*
/// recorded — partial progress stays honest.
#[test]
fn on_the_fly_arena_respects_node_ceiling() {
    use rega_automata::emptiness::for_each_accepting_lasso;
    use rega_core::symbolic::SControlSource;

    let cache = SatCache::new(Schema::empty());
    let ra = dense_control(51);
    for max_nodes in [500u64, 2_000, 5_000] {
        let budget = Budget::start(&BudgetSpec {
            deadline_ms: None,
            max_nodes: Some(max_nodes),
            max_types: None,
        });
        let mut src = SControlSource::new(&ra, &cache, &budget);
        let trip = src.trip_handle();
        let lassos = for_each_accepting_lasso(
            &mut src,
            64,
            10,
            500_000,
            &mut || trip.borrow().is_some(),
            &mut |_| false,
        );
        let g = src.take_trip().expect("every ceiling here is too small");
        assert!(g.phase().starts_with("emptiness.on_the_fly"));
        assert!(
            (src.arena().nodes_expanded() as u64) <= max_nodes + 1,
            "ceiling {max_nodes}: {} nodes left in the arena",
            src.arena().nodes_expanded()
        );
        assert!(budget.nodes() <= max_nodes + 1);
        assert!(
            lassos.is_empty(),
            "a drained search must not fabricate lassos"
        );
    }
}
