//! Differential pinning of the on-the-fly emptiness kernel.
//!
//! `check_emptiness` runs the fast path: lazy `SControl` expansion into an
//! edge arena, bitset σ-type joint-satisfiability, incremental stabilized
//! class structures, and witness construction interleaved with the lasso
//! search. `check_emptiness_reference` is the retained pre-kernel pipeline
//! (materialized NBA, up-front enumeration, from-scratch class builds).
//!
//! Over generated extended register automata the two must agree *exactly*:
//! same verdict, and on non-empty instances the same witness control lasso.
//! Every witness is additionally replayed through the run verifier — the
//! prefix run must validate over the witness database, and a full periodic
//! run, when produced, must pass `check_lasso_run` end-to-end.

use proptest::prelude::*;
use rega_analysis::emptiness::{
    check_emptiness, check_emptiness_reference, EmptinessOptions, EmptinessVerdict, Witness,
};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::{ConstraintKind, ExtendedAutomaton};
use rega_data::RegIdx;

/// Replays a witness through the concrete run verifier.
fn verify_witness(ext: &ExtendedAutomaton, w: &Witness, label: &str) {
    w.prefix_run
        .validate(ext.ra(), &w.database)
        .unwrap_or_else(|e| panic!("{label}: witness prefix run invalid: {e:?}"));
    ext.check_finite_prefix(&w.database, &w.prefix_run)
        .unwrap_or_else(|e| panic!("{label}: witness prefix violates constraints: {e:?}"));
    if let Some(run) = &w.lasso_run {
        ext.check_lasso_run(&w.database, run)
            .unwrap_or_else(|e| panic!("{label}: witness lasso run invalid: {e:?}"));
    }
}

/// Runs both pipelines and asserts byte-identical outcomes.
fn assert_pipelines_agree(ext: &ExtendedAutomaton, label: &str) {
    let opts = EmptinessOptions::default();
    let fast = check_emptiness(ext, &opts)
        .unwrap_or_else(|e| panic!("{label}: fast pipeline errored: {e:?}"));
    let refr = check_emptiness_reference(ext, &opts)
        .unwrap_or_else(|e| panic!("{label}: reference pipeline errored: {e:?}"));
    match (&fast, &refr) {
        (EmptinessVerdict::Empty, EmptinessVerdict::Empty) => {}
        (EmptinessVerdict::NonEmpty(wf), EmptinessVerdict::NonEmpty(wr)) => {
            assert_eq!(
                wf.control, wr.control,
                "{label}: pipelines accepted different witness lassos"
            );
            verify_witness(ext, wf, label);
            verify_witness(ext, wr, label);
        }
        _ => panic!(
            "{label}: verdict mismatch — fast={}, reference={}",
            fast.is_nonempty(),
            refr.is_nonempty()
        ),
    }
}

/// Builds an extended automaton from generator parameters, optionally with
/// a global constraint (only when the automaton has registers; a pattern
/// the automaton cannot parse is skipped, not an error).
fn build_case(
    params: &GenParams,
    seed: u64,
    constraint: Option<(ConstraintKind, &str)>,
) -> ExtendedAutomaton {
    let ra = random_automaton(params, seed);
    let mut ext = ExtendedAutomaton::new(ra);
    if let Some((kind, pattern)) = constraint {
        if params.k > 0 {
            let _ = ext.add_constraint_str(kind, RegIdx(0), RegIdx(0), pattern);
        }
    }
    ext
}

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        (2usize..6, 0u16..3, 1usize..4),
        (0usize..4, 0usize..2, 0usize..7),
    )
        .prop_map(
            |((states, k, out_degree), (literals_per_type, unary_relations, rel_tenths))| {
                GenParams {
                    states,
                    k,
                    out_degree,
                    literals_per_type,
                    unary_relations,
                    relational_probability: rel_tenths as f64 / 10.0,
                }
            },
        )
}

fn constraint_strategy() -> impl Strategy<Value = Option<(ConstraintKind, &'static str)>> {
    prop_oneof![
        Just(None),
        Just(None),
        Just(None),
        Just(Some((ConstraintKind::Equal, "s0 s1* s0"))),
        Just(Some((ConstraintKind::NotEqual, "s0 s0* s0"))),
        Just(Some((ConstraintKind::Equal, "s1 s0* s1"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The differential property: on arbitrary generated extended register
    // automata, the on-the-fly kernel and the retained reference pipeline
    // return identical verdicts and witnesses.
    #[test]
    fn on_the_fly_agrees_with_reference(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        constraint in constraint_strategy(),
    ) {
        let ext = build_case(&params, seed, constraint);
        assert_pipelines_agree(&ext, &format!("params={params:?} seed={seed}"));
    }
}

/// Pinned regression cases: previously-exercised corners of the generator
/// kept as exact replays so a future kernel change that breaks one of them
/// fails deterministically, independent of proptest's RNG.
#[test]
#[allow(clippy::type_complexity)]
fn pinned_regression_seeds() {
    let pins: [(GenParams, u64, Option<(ConstraintKind, &str)>); 4] = [
        // Register-free dense-ish control with a database: the search is
        // pure graph reachability, witness needs relational facts.
        (
            GenParams {
                states: 5,
                k: 0,
                out_degree: 3,
                literals_per_type: 0,
                unary_relations: 1,
                relational_probability: 0.6,
            },
            13,
            None,
        ),
        // Two registers, inequality-heavy types: exercises the bitset
        // joint-satisfiability fast path and per-class fresh values.
        (
            GenParams {
                states: 4,
                k: 2,
                out_degree: 2,
                literals_per_type: 3,
                unary_relations: 0,
                relational_probability: 0.0,
            },
            42,
            None,
        ),
        // A global Equal constraint forcing cross-position merges.
        (
            GenParams {
                states: 3,
                k: 1,
                out_degree: 2,
                literals_per_type: 2,
                unary_relations: 1,
                relational_probability: 0.4,
            },
            1001,
            Some((ConstraintKind::Equal, "s0 s1* s0")),
        ),
        // A NotEqual self-constraint: lassos revisiting s0 must keep the
        // register fresh, pushing witness construction to non-collapsed
        // values (or to emptiness).
        (
            GenParams {
                states: 4,
                k: 2,
                out_degree: 2,
                literals_per_type: 1,
                unary_relations: 1,
                relational_probability: 0.3,
            },
            7,
            Some((ConstraintKind::NotEqual, "s0 s0* s0")),
        ),
    ];
    for (i, (params, seed, constraint)) in pins.iter().enumerate() {
        let ext = build_case(params, *seed, *constraint);
        assert_pipelines_agree(&ext, &format!("pin #{i}"));
    }
}
