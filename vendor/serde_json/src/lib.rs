//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a self-contained JSON implementation: the [`Value`] tree, a
//! strict recursive-descent parser ([`from_str`]), serializers
//! ([`to_string`], [`to_string_pretty`]), and a [`json!`]-style builder
//! macro. There is no serde data model and no `#[derive(Serialize)]` —
//! callers construct and destructure [`Value`]s explicitly, which is all
//! the workspace needs for JSONL event ingestion and metrics export.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or structure error, with a byte offset where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer-preserving where possible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
}

impl Number {
    /// The value as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }
}

/// A JSON document tree. Object keys are kept sorted (BTreeMap), which
/// makes serialized snapshots deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::U64(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(Number::U64(n as u64))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::U64(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        if n >= 0 {
            Value::Number(Number::U64(n as u64))
        } else {
            Value::Number(Number::I64(n))
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::F64(n))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; continue below
                            // without the generic advance.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| self.err("bad number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::U64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::I64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::F64(n)) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null"); // like serde_json: non-finite → null
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            pad(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            pad(out, indent, level);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
}

/// Serializes compactly. Infallible for [`Value`] inputs; the `Result`
/// mirrors the upstream signature so call sites are source-compatible.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    Ok(out)
}

/// Serializes with two-space indentation (same `Result` note as
/// [`to_string`]).
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    Ok(out)
}

const NULL: Value = Value::Null;

/// `value["key"]`, yielding `Null` for missing keys or non-objects, as
/// upstream does.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]`, yielding `Null` out of bounds or for non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(xs) => xs.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Builds a [`Value`] from JSON-shaped syntax:
/// `json!({"k": 1 + 2, "xs": [true, null]})`. Expression positions accept
/// any `Into<Value>`, including multi-token expressions; implemented as a
/// token-tree muncher like the upstream macro.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // --- array element munching: accumulate elements into [$elems] ---
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // --- object entry munching: key tokens gather in (), the pending
    //     entry moves to [] once its value is parsed ---
    (@object $map:ident () () ()) => {};
    (@object $map:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $map () ($($rest)*) ($($rest)*));
    };
    (@object $map:ident [$($key:tt)+] ($value:expr)) => {
        $map.insert(::std::string::String::from($($key)+), $value);
    };
    (@object $map:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    (@object $map:ident ($($key:tt)+) (: [$($inner:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $map [$($key)+] ($crate::json_internal!([$($inner)*])) $($rest)*
        );
    };
    (@object $map:ident ($($key:tt)+) (: {$($inner:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $map [$($key)+] ($crate::json_internal!({$($inner)*})) $($rest)*
        );
    };
    (@object $map:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $map [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    (@object $map:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $map:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // --- primary forms ---
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut map = ::std::collections::BTreeMap::new();
            $crate::json_internal!(@object map () ($($tt)+) ($($tt)+));
            map
        })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"nested": true}, "s": "hi\nthere", "z": null}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_i64(),
            Some(-2)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\nthere"));
        assert!(v.get("z").unwrap().is_null());
        let back = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let back_pretty = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back_pretty);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#""\q""#).is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn json_macro() {
        let v = json!({"name": "s1", "regs": [1u64, 2u64], "live": true, "none": null});
        assert_eq!(v.get("name").unwrap().as_str(), Some("s1"));
        assert_eq!(v.get("regs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("live").unwrap().as_bool(), Some(true));
        assert!(v.get("none").unwrap().is_null());
    }
}
