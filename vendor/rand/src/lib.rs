//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the `rand 0.8` API
//! surface it actually uses: [`Rng::gen_range`] / [`Rng::gen_bool`] over a
//! [`SeedableRng`]-constructed [`rngs::StdRng`].
//!
//! The generator is splitmix64 — not cryptographic, but statistically fine
//! for test-input and workload generation, and fully deterministic per
//! seed (which the repo's generators rely on anyway via `seed_from_u64`).

/// Uniform sampling from a half-open range, for the primitive integer
/// types the workspace draws from.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi)` given a raw 64-bit random draw.
    fn sample_from(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128) - (lo as u128);
                lo + ((raw as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for i32 {
    fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        let span = (hi as i128) - (lo as i128);
        (lo as i128 + (raw as i128).rem_euclid(span)) as i32
    }
}

impl SampleUniform for i64 {
    fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        let span = (hi as i128) - (lo as i128);
        (lo as i128 + (raw as i128).rem_euclid(span)) as i64
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_from(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, compared against p.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing a generator from seed material (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One throwaway draw decorrelates small seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        let v16: u16 = rng.gen_range(0..5u16);
        assert!(v16 < 5);
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
