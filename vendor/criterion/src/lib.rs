//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small timing harness with the API surface the E1–E13 benches
//! use: [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time` / `configure_from_args`, `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and
//! `Bencher::iter`.
//!
//! Reporting mimics criterion's `time: [lo mid hi]` lines (min, median of
//! sample means, max) so the EXPERIMENTS.md tables keep their shape. There
//! is no statistical regression analysis — numbers are honest wall-clock
//! means over the configured samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a parameterized benchmark (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            cfg: self.clone(),
            result: None,
        };
        f(&mut b);
        b.report(&id.to_string());
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            cfg: self.clone(),
            result: None,
        };
        f(&mut b, input);
        b.report(&id.to_string());
    }

    /// Final summary hook (the stub reports per-benchmark as it goes).
    pub fn final_summary(self) {}
}

/// Measured statistics of one benchmark (seconds per iteration).
#[derive(Clone, Copy, Debug)]
struct Stats {
    lo: f64,
    mid: f64,
    hi: f64,
}

/// Passed to the closure given to `bench_function` / `bench_with_input`.
pub struct Bencher {
    cfg: Criterion,
    result: Option<Stats>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Pick iterations per sample so samples fill the measurement window.
        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters = ((per_sample / est.max(1e-9)).ceil() as u64).clamp(1, 100_000_000);

        let mut means: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            means.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some(Stats {
            lo: means[0],
            mid: means[means.len() / 2],
            hi: means[means.len() - 1],
        });
    }

    fn report(&self, id: &str) {
        let Some(s) = self.result else {
            println!("{id:<40} (no measurement)");
            return;
        };
        println!(
            "{id:<40} time:   [{} {} {}]",
            fmt_time(s.lo),
            fmt_time(s.mid),
            fmt_time(s.hi)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut ran = false;
        c.bench_function("stub/smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        c.bench_with_input(BenchmarkId::new("stub/param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        assert!(ran);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with('s'));
    }
}
