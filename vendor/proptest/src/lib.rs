//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface the
//! tests use: the [`proptest!`] macro (`x in strategy` bindings, optional
//! `#![proptest_config(..)]`), [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`collection::vec`], `prop::bool::ANY`,
//! ranges and tuples as strategies, [`prop_oneof!`], [`Just`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * generation is deterministic (seeded from the test name), so failures
//!   reproduce across runs;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message directly;
//! * `prop_assume!` rejects the case and draws a fresh one, with a cap on
//!   total rejections.

pub mod test_runner {
    //! Runner configuration and control-flow types.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Marker returned (via `return Err(..)`) by `prop_assume!` to reject
    /// the current case.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// Deterministic splitmix64 generator feeding all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so each property
        /// gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of an associated type. Unlike real proptest
    /// there is no value tree / shrinking; `generate` produces the value
    /// directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values; draws again (bounded) when `f` is
        /// false.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: `depth` levels of `f` applied over the
        /// leaf, choosing between leaf and recursive case uniformly at
        /// each level. The `_desired_size` / `_expected_branch` hints of
        /// real proptest are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), f(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive draws");
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// Uniform `true` / `false`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` module tree (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat, ..) { body } }`,
/// with an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(50).max(5_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name)
                );
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                #[allow(clippy::redundant_closure_call)] // the closure scopes `?`/`return` of $body
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::Rejected,
                > {
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

/// Asserts within a property body (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (draws a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u8..5, pair in (0u16..3, prop::bool::ANY)) {
            prop_assert!(x < 5);
            prop_assert!(pair.0 < 3);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..7, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 7);
            }
        }

        #[test]
        fn assume_rejects(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive(v in super::strategy::Just(3u8).prop_recursive(2, 8, 2, |inner| {
            prop_oneof![inner.prop_map(|x| x.saturating_add(1)), Just(0u8)]
        })) {
            prop_assert!(v <= 5);
        }
    }
}
